// Closed-loop load generation against a live daemon.
//
// The original approxctl loadgen was open-loop: it fired every trace
// job from its own goroutine and then polled them all, which measures
// nothing but the submission burst. RunClosedLoop is a real service
// benchmark: C clients each run submit -> observe-terminal -> next in
// a closed loop over plain HTTP, recording per-request latency, so the
// report carries sustained QPS and submit/complete percentiles — the
// numbers the sharded daemon exists to improve (approxbench's
// "service" experiment compares 1-shard/JSON against N-shard/binary
// with exactly this driver).
//
// Wall-clock time is correct here by design: the loadgen measures the
// daemon process from outside, where real seconds are the unit — the
// virtual clock belongs to the engines on the other side of the HTTP
// boundary.
package jobserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"approxhadoop/internal/wire"
)

// LoadConfig configures one closed-loop run.
type LoadConfig struct {
	// Base is the daemon's base URL (e.g. "http://127.0.0.1:7070").
	Base string
	// Clients is the closed-loop concurrency (default 4).
	Clients int
	// Ops is the total number of jobs to run through the loop
	// (default 16).
	Ops int
	// Seed makes the generated spec sequence deterministic.
	Seed int64
	// Tenants spreads ops across this many tenant identities (default
	// 8): tenants are the placement keys, so more tenants exercise more
	// shards.
	Tenants int
	// Watch follows each job's snapshot stream to its terminal frame
	// instead of polling job state — the fan-out path under test.
	Watch bool
	// Binary negotiates the binary wire format for watched streams.
	Binary bool
	// Timeout bounds each op (default 60s); an op past it counts as an
	// error and the client moves on.
	Timeout time.Duration
}

// LoadReport is the closed-loop run's measurement.
type LoadReport struct {
	Ops      int     `json:"ops"`      // ops completed successfully
	Errors   int     `json:"errors"`   // ops abandoned (transport/timeout)
	Rejected int     `json:"rejected"` // 429/503 bounces absorbed by retry
	Clients  int     `json:"clients"`
	WallSecs float64 `json:"wallSecs"`
	QPS      float64 `json:"qps"` // completed ops per wall second

	// Submit latency: POST /v1/jobs acknowledged, in milliseconds.
	SubmitP50 float64 `json:"submitP50ms"`
	SubmitP95 float64 `json:"submitP95ms"`
	SubmitP99 float64 `json:"submitP99ms"`
	SubmitMax float64 `json:"submitMaxMs"`
	// Complete latency: submit start to terminal state observed.
	CompleteP50 float64 `json:"completeP50ms"`
	CompleteP95 float64 `json:"completeP95ms"`
	CompleteP99 float64 `json:"completeP99ms"`
	CompleteMax float64 `json:"completeMaxMs"`

	// Stream accounting when Watch is set.
	Frames      int   `json:"frames,omitempty"`
	StreamBytes int64 `json:"streamBytes,omitempty"`
}

// LoadSpec is the op'th generated job: small (so the loop turns over
// quickly), deterministic in (seed, op), and tenant-labeled so a
// sharded daemon spreads the load by placement key.
func LoadSpec(seed int64, op, tenants int) JobSpec {
	if tenants <= 0 {
		tenants = 8
	}
	apps := Apps()
	spec := JobSpec{
		Name:          fmt.Sprintf("load-%04d", op),
		App:           apps[op%len(apps)],
		Blocks:        12,
		LinesPerBlock: 80,
		Seed:          seed*1009 + int64(op),
		Tenant:        fmt.Sprintf("tenant-%02d", op%tenants),
		Controller:    "static",
		SampleRatio:   0.25,
	}
	return spec
}

// RunClosedLoop drives cfg.Clients concurrent closed loops until
// cfg.Ops jobs have been pulled through the daemon, and reports
// latency percentiles and sustained QPS.
func RunClosedLoop(cfg LoadConfig) LoadReport {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	type clientStats struct {
		submits, completes []float64
		errors, rejected   int
		ops                int
		frames             int
		bytes              int64
	}
	var next atomic.Int64
	perClient := make([]clientStats, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cs := &perClient[ci]
			for {
				op := int(next.Add(1)) - 1
				if op >= cfg.Ops {
					return
				}
				spec := LoadSpec(cfg.Seed, op, cfg.Tenants)
				deadline := time.Now().Add(cfg.Timeout)
				t0 := time.Now()
				id, rejects, err := submitWithRetry(cfg.Base, spec, deadline)
				cs.rejected += rejects
				if err != nil {
					cs.errors++
					continue
				}
				cs.submits = append(cs.submits, msSince(t0))
				if cfg.Watch {
					frames, n, werr := watchToTerminal(cfg.Base, id, cfg.Binary, deadline)
					cs.frames += frames
					cs.bytes += n
					err = werr
				} else {
					err = pollTerminal(cfg.Base, id, deadline)
				}
				if err != nil {
					cs.errors++
					continue
				}
				cs.completes = append(cs.completes, msSince(t0))
				cs.ops++
			}
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := LoadReport{Clients: cfg.Clients, WallSecs: wall}
	var submits, completes []float64
	for i := range perClient {
		cs := &perClient[i]
		rep.Ops += cs.ops
		rep.Errors += cs.errors
		rep.Rejected += cs.rejected
		rep.Frames += cs.frames
		rep.StreamBytes += cs.bytes
		submits = append(submits, cs.submits...)
		completes = append(completes, cs.completes...)
	}
	if wall > 0 {
		rep.QPS = float64(rep.Ops) / wall
	}
	rep.SubmitP50, rep.SubmitP95, rep.SubmitP99, rep.SubmitMax = percentiles(submits)
	rep.CompleteP50, rep.CompleteP95, rep.CompleteP99, rep.CompleteMax = percentiles(completes)
	return rep
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

// percentiles returns p50/p95/p99/max by nearest rank over a copy.
func percentiles(samples []float64) (p50, p95, p99, max float64) {
	if len(samples) == 0 {
		return 0, 0, 0, 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(p*float64(len(s))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return rank(0.50), rank(0.95), rank(0.99), s[len(s)-1]
}

// submitWithRetry POSTs one spec, absorbing backpressure (429/503)
// with short sleeps until the deadline. Returns the job id and how
// many bounces were absorbed.
func submitWithRetry(base string, spec JobSpec, deadline time.Time) (string, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", 0, err
	}
	rejects := 0
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", rejects, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			discard(resp)
			rejects++
			if time.Now().After(deadline) {
				return "", rejects, fmt.Errorf("jobserver: submit %s still bouncing (HTTP %d) at deadline", spec.Name, resp.StatusCode)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			discard(resp)
			return "", rejects, fmt.Errorf("jobserver: submit %s: HTTP %d", spec.Name, resp.StatusCode)
		}
		var out struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		discard(resp)
		if err != nil {
			return "", rejects, err
		}
		return out.ID, rejects, nil
	}
}

// pollTerminal polls job state until terminal.
func pollTerminal(base, id string, deadline time.Time) error {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var st WireState
		err = json.NewDecoder(resp.Body).Decode(&st)
		discard(resp)
		if err != nil {
			return err
		}
		if st.Status.Terminal() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("jobserver: job %s still %s at deadline", id, st.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// watchToTerminal follows a job's stream (JSONL or binary) to its
// terminal frame, returning the frame count and bytes read.
func watchToTerminal(base, id string, binary bool, deadline time.Time) (int, int64, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return 0, 0, err
	}
	if binary {
		req.Header.Set("Accept", wire.ContentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("jobserver: stream %s: HTTP %d", id, resp.StatusCode)
	}
	counted := &countReader{r: resp.Body}
	frames := 0
	if binary {
		br := bufio.NewReader(counted)
		for {
			payload, err := wire.ReadFrame(br)
			if err == io.EOF {
				return frames, counted.n, fmt.Errorf("jobserver: stream %s ended before a terminal frame", id)
			}
			if err != nil {
				return frames, counted.n, err
			}
			f, err := wire.DecodeJobFrame(payload)
			if err != nil {
				return frames, counted.n, err
			}
			frames++
			if JobStatus(f.Status).Terminal() {
				return frames, counted.n, nil
			}
			if time.Now().After(deadline) {
				return frames, counted.n, fmt.Errorf("jobserver: stream %s still open at deadline", id)
			}
		}
	}
	sc := bufio.NewScanner(counted)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var f WireFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return frames, counted.n, err
		}
		frames++
		if f.Status.Terminal() {
			return frames, counted.n, nil
		}
		if time.Now().After(deadline) {
			return frames, counted.n, fmt.Errorf("jobserver: stream %s still open at deadline", id)
		}
	}
	if err := sc.Err(); err != nil {
		return frames, counted.n, err
	}
	return frames, counted.n, fmt.Errorf("jobserver: stream %s ended before a terminal frame", id)
}

// countReader counts bytes as they pass through.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// discard drains and closes a response body so the keep-alive
// connection is reusable; loadgen tolerates drain errors silently (the
// op's outcome was already decided).
func discard(resp *http.Response) {
	//lint:ignore errcheck drain errors cannot change the op's already-decided outcome
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	//lint:ignore errcheck close errors cannot change the op's already-decided outcome
	_ = resp.Body.Close()
}
