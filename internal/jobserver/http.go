package jobserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/wire"
)

// The HTTP/JSON API of cmd/approxd. All payloads are NaN-safe: the
// wire types below map non-finite interval half-widths onto the -1
// sentinel with Unbounded set, the same convention as
// mapreduce.WriteJSON, because encoding/json rejects NaN/Inf.
//
//	POST   /v1/jobs          submit a JobSpec   -> {"id": ...} (202 {"held": n} in hold mode)
//	GET    /v1/jobs          list job states
//	GET    /v1/jobs/{id}     one job's state
//	DELETE /v1/jobs/{id}     cancel
//	GET    /v1/jobs/{id}/result   final result (409 until terminal)
//	GET    /v1/jobs/{id}/stream   WireFrame stream: snapshots with
//	                              narrowing CIs, last frame final=true;
//	                              ?from=N resumes after sequence N-1;
//	                              ?lag=N|off tunes drop-to-latest; JSONL
//	                              by default, length-prefixed binary when
//	                              Accept names wire.ContentType
//	POST   /v1/replay        run a whole trace ([]JobSpec), return states
//	POST   /v1/release       release held submissions (hold mode)
//	GET    /v1/stats         service counters
//	GET    /healthz          liveness; 503 once the journal has failed
//	GET    /readyz           readiness; 503 while draining (Retry-After)
//
// The /v1/streams routes (streamhttp.go) are the continuous-query API
// of the streaming plane: open a StreamSpec, watch its per-window
// estimates as Seq-resumable JSONL frames, stop it.

// WireEstimate is the JSON-safe form of one KeyEstimate.
type WireEstimate struct {
	Key        string  `json:"key"`
	Value      float64 `json:"value"`
	Epsilon    float64 `json:"epsilon"` // CI half-width; -1 when unbounded
	Confidence float64 `json:"confidence"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Exact      bool    `json:"exact,omitempty"`
	Unbounded  bool    `json:"unbounded,omitempty"`
}

// WireResult is the JSON-safe form of a completed job's Result.
type WireResult struct {
	Job      string             `json:"job"`
	Runtime  float64            `json:"runtimeSecs"`
	EnergyWh float64            `json:"energyWh"`
	Counters mapreduce.Counters `json:"counters"`
	Outputs  []WireEstimate     `json:"outputs"`
}

// WireState is the JSON form of one JobState.
type WireState struct {
	ID       string      `json:"id"`
	Spec     JobSpec     `json:"spec"`
	Status   JobStatus   `json:"status"`
	SubmitVT float64     `json:"submitVT"`
	StartVT  float64     `json:"startVT"`
	EndVT    float64     `json:"endVT"`
	Err      string      `json:"error,omitempty"`
	Result   *WireResult `json:"result,omitempty"`
}

// WireFrame is one line of the streaming endpoint. Seq is the frame's
// position in the job's snapshot sequence; a client that loses its
// connection reconnects with ?from=<lastSeq+1> and resumes without
// duplicates, including across a daemon restart.
type WireFrame struct {
	Seq       int            `json:"seq"`
	T         float64        `json:"t"` // virtual seconds since job start
	Status    JobStatus      `json:"status"`
	Final     bool           `json:"final,omitempty"`
	Estimates []WireEstimate `json:"estimates"`
}

// WireEstimates converts estimates, mapping non-finite half-widths to
// the -1 sentinel.
func WireEstimates(ests []mapreduce.KeyEstimate) []WireEstimate {
	out := make([]WireEstimate, 0, len(ests))
	for _, e := range ests {
		w := WireEstimate{
			Key:        e.Key,
			Value:      e.Est.Value,
			Epsilon:    e.Est.Err,
			Confidence: e.Est.Conf,
			Lo:         e.Est.Lo(),
			Hi:         e.Est.Hi(),
			Exact:      e.Exact,
		}
		if math.IsNaN(w.Epsilon) || math.IsInf(w.Epsilon, 0) || math.IsNaN(w.Value) || math.IsInf(w.Value, 0) {
			if math.IsNaN(w.Value) || math.IsInf(w.Value, 0) {
				w.Value = 0
			}
			w.Epsilon = -1
			w.Lo = w.Value
			w.Hi = w.Value
			w.Unbounded = true
		}
		out = append(out, w)
	}
	return out
}

// wireResult converts a Result (nil-safe).
func wireResult(res *mapreduce.Result) *WireResult {
	if res == nil {
		return nil
	}
	return &WireResult{
		Job:      res.Job,
		Runtime:  res.Runtime,
		EnergyWh: res.EnergyWh,
		Counters: res.Counters,
		Outputs:  WireEstimates(res.Outputs),
	}
}

// wireState converts a JobState.
func wireState(st JobState) WireState {
	return WireState{
		ID:       st.ID,
		Spec:     st.Spec,
		Status:   st.Status,
		SubmitVT: st.SubmitVT,
		StartVT:  st.StartVT,
		EndVT:    st.EndVT,
		Err:      st.Err,
		Result:   wireResult(st.Result),
	}
}

func wireStates(sts []JobState) []WireState {
	out := make([]WireState, 0, len(sts))
	for _, st := range sts {
		out = append(out, wireState(st))
	}
	return out
}

// Handler returns the daemon's HTTP API. Set RequestTimeout and
// MaxBody on the Daemon before calling it to harden the request path;
// both zero values leave behavior unlimited (handy in tests).
//
// The timeout wraps every quick endpoint with http.TimeoutHandler.
// Exempt by design: /stream (open-ended long poll), /replay and
// /release (synchronous batch runs whose duration is the work itself).
func (d *Daemon) Handler() http.Handler {
	quick := func(h http.HandlerFunc) http.Handler {
		if d.RequestTimeout <= 0 {
			return h
		}
		return http.TimeoutHandler(h, d.RequestTimeout, `{"error":"request timed out"}`)
	}
	mux := http.NewServeMux()
	mux.Handle("POST /v1/jobs", quick(d.handleSubmit))
	mux.Handle("GET /v1/jobs", quick(d.handleList))
	mux.Handle("GET /v1/jobs/{id}", quick(d.handleGet))
	mux.Handle("DELETE /v1/jobs/{id}", quick(d.handleCancel))
	mux.Handle("GET /v1/jobs/{id}/result", quick(d.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", d.handleStream)
	mux.HandleFunc("POST /v1/replay", d.handleReplay)
	mux.HandleFunc("POST /v1/release", d.handleRelease)
	mux.Handle("GET /v1/stats", quick(d.handleStats))
	mux.Handle("POST /v1/streams", quick(d.handleStreamOpen))
	mux.Handle("GET /v1/streams", quick(d.handleStreamList))
	mux.Handle("GET /v1/streams/{id}", quick(d.handleStreamGet))
	mux.Handle("DELETE /v1/streams/{id}", quick(d.handleStreamStop))
	mux.HandleFunc("GET /v1/streams/{id}/watch", d.handleStreamWatch)
	mux.Handle("GET /healthz", quick(d.handleHealthz))
	mux.Handle("GET /readyz", quick(d.handleReadyz))
	return mux
}

// handleHealthz reports liveness: the process serves traffic and can
// still promise durability. A journal I/O failure flips it to 503 so
// an operator (or orchestrator) restarts the daemon onto a good disk.
func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if err := d.fleet.JournalErr(); err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("journal failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "journaled": d.fleet.Shard(0).Journaled()})
}

// handleReadyz reports readiness to accept new submissions: false
// while draining (load balancers stop routing here; running jobs
// finish undisturbed) or after a journal failure.
func (d *Daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if err := d.fleet.JournalErr(); err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("journal failed: %w", err))
		return
	}
	if d.fleet.Draining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// maxBody is the effective POST body bound.
func (d *Daemon) maxBody() int64 {
	if d.MaxBody > 0 {
		return d.MaxBody
	}
	return 4 << 20 // default 4 MiB: a generous trace, not a DoS vector
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//lint:ignore errcheck the response writer owns delivery; an encode error here has no one left to tell
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, d.maxBody())).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
		return
	}
	id, held, err := d.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		// The daemon is shutting down gracefully; the journal keeps what
		// it already accepted, new work must wait for the restart.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrBusy), errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	case id == "":
		writeJSON(w, http.StatusAccepted, map[string]int{"held": held})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"id": id})
	}
}

func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, wireStates(d.fleet.Jobs()))
}

func (d *Daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := d.fleet.JobInfo(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, wireState(st))
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := d.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceled"})
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := d.fleet.JobInfo(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	if !st.Status.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; result not ready", st.ID, st.Status))
		return
	}
	if st.Result == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", st.ID, st.Status, st.Err))
		return
	}
	writeJSON(w, http.StatusOK, wireResult(st.Result))
}

// wantBinary negotiates the stream encoding: a client whose Accept
// header names the binary frame media type gets length-prefixed binary
// frames; everyone else gets the legacy JSONL. Either way every
// subscriber of a job shares the same encoded buffers (frames.go).
func wantBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

// streamLag resolves the effective slow-subscriber drop threshold for
// one request: the daemon default, overridable per connection with
// ?lag=N (N frames behind a live job triggers drop-to-latest; lag=off
// disables it, e.g. for an auditing client that must see every frame).
func (d *Daemon) streamLag(r *http.Request) int {
	q := r.URL.Query().Get("lag")
	if q == "" {
		return d.maxLag()
	}
	if q == "off" {
		return 0
	}
	if n, err := strconv.Atoi(q); err == nil && n > 0 {
		return n
	}
	return d.maxLag()
}

// handleStream serves a job's snapshot frames — JSONL or negotiated
// binary — ending with the terminal frame (final=true for successful
// jobs). Frames are pre-encoded and shared across subscribers; this
// handler only copies buffers, so its cost does not scale with frame
// size times subscriber count, and a stalled client blocks nothing but
// its own connection (falling too far behind skips it to the latest
// frame — the Seq gap tells it frames were dropped).
func (d *Daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	svc := d.fleet.ServiceFor(id)
	if _, ok := svc.JobInfo(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	binary := wantBinary(r)
	if binary {
		w.Header().Set("Content-Type", wire.ContentType)
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out before blocking for the first frame, so
		// clients observe a connected stream even on an idle job.
		flusher.Flush()
	}
	cursor := 0
	if from := r.URL.Query().Get("from"); from != "" {
		// Reconnect resume: skip frames the client already has.
		if n, err := strconv.Atoi(from); err == nil && n > 0 {
			cursor = n
		}
	}
	lag := d.streamLag(r)
	for {
		fresh, status, next, err := svc.FramesFrom(id, cursor, lag)
		if err != nil {
			return
		}
		terminal := status.Terminal()
		for _, f := range fresh {
			if f.WriteTo(w, binary) != nil {
				return // client went away
			}
		}
		cursor = next
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			if len(fresh) == 0 {
				// Failed/canceled before any snapshot (or a resume that
				// was already fully caught up): emit one terminal frame
				// so clients always see an ending.
				//lint:ignore errcheck the stream is ending either way
				_ = synthJobFrame(cursor, status).WriteTo(w, binary)
				if flusher != nil {
					flusher.Flush()
				}
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}

func (d *Daemon) handleReplay(w http.ResponseWriter, r *http.Request) {
	var specs []JobSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, d.maxBody())).Decode(&specs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace: %w", err))
		return
	}
	states, err := d.Replay(specs)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, wireStates(states))
}

func (d *Daemon) handleRelease(w http.ResponseWriter, _ *http.Request) {
	states, err := d.Release()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, wireStates(states))
}

func (d *Daemon) handleStats(w http.ResponseWriter, _ *http.Request) {
	st, err := d.Stats()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
