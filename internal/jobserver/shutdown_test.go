package jobserver

import (
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestCloseIdempotent: Service.Close is called by daemon teardown,
// signal handlers, and test cleanups — every call after the first must
// be a no-op, including the journal close underneath.
func TestCloseIdempotent(t *testing.T) {
	j, _, err := OpenJournal(tempJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{SnapshotEvery: -1})
	svc.UseJournal(j)
	if _, err := svc.Submit(JobSpec{App: "total-size", Blocks: 8, LinesPerBlock: 50, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close()
	svc.Close()
	if err := svc.JournalErr(); err != nil {
		t.Fatalf("repeated Close corrupted the journal state: %v", err)
	}
	d := NewDaemon(New(Config{SnapshotEvery: -1}), false)
	d.Stop()
	d.Stop()
}

// TestCloseWakesStreamWaiters: goroutines blocked in StreamFrom on a
// never-finishing job must all wake with an error when the service
// closes — a hung waiter would hold its HTTP handler, and with it the
// listener, open forever.
func TestCloseWakesStreamWaiters(t *testing.T) {
	svc := New(Config{SnapshotEvery: -1})
	// Submit dispatches onto the engine, but nothing pumps it: the job
	// stays running forever — a stand-in for a stream with no traffic.
	id, err := svc.Submit(JobSpec{App: "total-size", Blocks: 8, LinesPerBlock: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, errs[i] = svc.StreamFrom(id, 0)
		}()
	}
	// Give the waiters a moment to block (late arrivals see closed and
	// return immediately, which is equally correct).
	time.Sleep(20 * time.Millisecond)
	svc.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream waiters still blocked 5s after Close")
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("waiter %d returned nil error from a closed service", i)
		}
	}
}

// TestShutdownCompletesInflightStream is the listener-ordering half of
// the shutdown contract: an in-flight HTTP stream handler blocked on a
// job that will never finish must complete once the daemon stops, so
// closing the listener (which waits for in-flight requests) cannot
// deadlock.
func TestShutdownCompletesInflightStream(t *testing.T) {
	d, ts := startDaemon(t, Config{SnapshotEvery: 5}, false)
	svc := d.Service()
	// Freeze a job in the queue: drain blocks dispatch, so the enqueued
	// job can never start, and its stream never produces a frame.
	svc.StartDrain()
	if err := d.do(func() {
		spec := JobSpec{Name: "frozen", App: "total-size", Blocks: 8, LinesPerBlock: 50, Seed: 2}
		job, err := spec.Build(1)
		if err != nil {
			t.Error(err)
			return
		}
		svc.enqueue(spec, job, "job-frozen")
	}); err != nil {
		t.Fatal(err)
	}

	connected := make(chan struct{})
	streamDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/job-frozen/stream")
		if err != nil {
			streamDone <- err
			return
		}
		defer resp.Body.Close()
		close(connected)
		_, err = io.Copy(io.Discard, resp.Body)
		streamDone <- err
	}()
	select {
	case <-connected:
	case err := <-streamDone:
		t.Fatalf("stream never connected: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("stream connect timed out")
	}

	// Stop wakes the handler's StreamFrom wait; the listener close then
	// has no in-flight request left to wait on.
	d.Stop()
	closed := make(chan struct{})
	go func() { ts.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("listener close blocked: in-flight handler never completed after Stop")
	}
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream body never ended")
	}
}
