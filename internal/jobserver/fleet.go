package jobserver

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"approxhadoop/internal/ring"
)

// ErrTenantQuota is returned by Submit when a tenant already has its
// quota of in-flight jobs (HTTP maps it to 429 — the client should
// retry after some of the tenant's jobs finish).
var ErrTenantQuota = errors.New("jobserver: tenant quota exceeded, retry later")

// fleetRingSeed fixes the consistent-hash ring's hash seed. It is a
// compile-time constant on purpose: placement must be a pure function
// of (key, shard count) so a restarted daemon — and the recovery test
// replaying its journals — routes every tenant exactly as the previous
// life did.
const fleetRingSeed = 0x5bd1e995

// Fleet routes jobs across a set of engine shards. Placement is
// consistent hashing on JobSpec.PlacementKey (tenant first): a tenant's
// jobs always land on the same shard, the mapping is deterministic for
// a fixed shard count, and growing the fleet from N to N+1 shards moves
// only ~1/(N+1) of the keyspace. The fleet also enforces the one piece
// of cross-shard policy the shards cannot see alone: per-tenant
// admission quotas over in-flight (non-terminal) live submissions.
//
// Everything id-addressed routes by the shard-owning id prefix
// ("job-s2-0001" names shard 2), so reads never consult a directory.
type Fleet struct {
	shards []*engineShard
	ring   *ring.Ring
	member map[string]*engineShard
	quota  int

	// qmu guards the quota ledger. It is taken from HTTP handler
	// goroutines (reserve) and from shard engine goroutines (release,
	// via the terminal hook); both sides do pure map updates, so the
	// engine never blocks behind it.
	qmu     sync.Mutex
	tenants map[string]int    // tenant -> in-flight live submissions
	counted map[string]string // job id -> tenant owed a release
}

// NewFleet starts a driver goroutine per service and wires placement
// and quota tracking. Services must be fully recovered (Recover run,
// no driver yet); the fleet installs each service's terminal hook and
// charges recovered in-flight jobs to their tenants before any engine
// steps, so quota accounting is exact across a restart.
func NewFleet(svcs []*Service, quota int) *Fleet {
	f := &Fleet{
		ring:    ring.New(fleetRingSeed, ring.DefaultReplicas),
		member:  make(map[string]*engineShard),
		quota:   quota,
		tenants: make(map[string]int),
		counted: make(map[string]string),
	}
	names := make([]string, len(svcs))
	for i := range svcs {
		names[i] = shardMember(i)
		f.ring.Add(names[i])
	}
	for i, svc := range svcs {
		svc.SetOnTerminal(f.releaseJob)
		// Recovered jobs that will re-run (queued or re-admitted) hold
		// quota units until their terminal hook fires, same as live ones.
		for _, st := range svc.Jobs() {
			if !st.Status.Terminal() {
				f.tenants[st.Spec.Tenant]++
				f.counted[st.ID] = st.Spec.Tenant
			}
		}
		sh := newEngineShard(i, svc)
		f.shards = append(f.shards, sh)
		f.member[names[i]] = sh
	}
	return f
}

// shardMember is the ring-member name of shard i.
func shardMember(i int) string {
	return fmt.Sprintf("shard-%d", i)
}

// Size returns the number of shards.
func (f *Fleet) Size() int { return len(f.shards) }

// Shard exposes shard i's service for tests and in-process callers.
func (f *Fleet) Shard(i int) *Service { return f.shards[i].svc }

// place returns the shard owning key.
func (f *Fleet) place(key string) *engineShard {
	return f.member[f.ring.Lookup(key)]
}

// PlacementShard reports which shard index a placement key routes to.
func (f *Fleet) PlacementShard(key string) int {
	return f.place(key).idx
}

// shardFor locates the shard owning job id: by id prefix when the
// fleet is sharded (ids carry their shard), falling back to a scan for
// ids that predate sharding or were installed by hand.
func (f *Fleet) shardFor(id string) *engineShard {
	if len(f.shards) == 1 {
		return f.shards[0]
	}
	for _, sh := range f.shards {
		if strings.HasPrefix(id, sh.svc.idPrefix()) {
			return sh
		}
	}
	for _, sh := range f.shards {
		if _, ok := sh.svc.JobInfo(id); ok {
			return sh
		}
	}
	// Unknown id: any shard answers "no job" identically.
	return f.shards[0]
}

// ServiceFor returns the service owning job id (for read paths:
// JobInfo, StreamFrom, FramesFrom are safe from any goroutine).
func (f *Fleet) ServiceFor(id string) *Service { return f.shardFor(id).svc }

// reserve charges one in-flight unit to tenant, failing when the quota
// is exhausted. A zero quota disables enforcement.
func (f *Fleet) reserve(tenant string) bool {
	if f.quota <= 0 {
		return true
	}
	f.qmu.Lock()
	defer f.qmu.Unlock()
	if f.tenants[tenant] >= f.quota {
		return false
	}
	f.tenants[tenant]++
	return true
}

// noteJob records that job id holds a quota unit for tenant.
func (f *Fleet) noteJob(id, tenant string) {
	f.qmu.Lock()
	f.counted[id] = tenant
	f.qmu.Unlock()
}

// undoReserve returns tenant's unit after a failed submit.
func (f *Fleet) undoReserve(tenant string) {
	if f.quota <= 0 {
		return
	}
	f.qmu.Lock()
	if f.tenants[tenant] > 1 {
		f.tenants[tenant]--
	} else {
		delete(f.tenants, tenant)
	}
	f.qmu.Unlock()
}

// releaseJob is the per-service terminal hook: when a counted job
// reaches a terminal state its tenant gets the unit back. Runs on the
// shard's engine goroutine, outside Service.mu; pure map updates only.
func (f *Fleet) releaseJob(st *JobState) {
	f.qmu.Lock()
	tenant, ok := f.counted[st.ID]
	if ok {
		delete(f.counted, st.ID)
		if f.tenants[tenant] > 1 {
			f.tenants[tenant]--
		} else {
			delete(f.tenants, tenant)
		}
	}
	f.qmu.Unlock()
}

// TenantInFlight reports tenant's current in-flight count (tests).
func (f *Fleet) TenantInFlight(tenant string) int {
	f.qmu.Lock()
	defer f.qmu.Unlock()
	return f.tenants[tenant]
}

// Submit places spec on its shard and admits it there, enforcing the
// tenant quota. Keyed retries dedupe fleet-wide: the placed shard is
// checked inside its own driver (so two concurrent retries race safely
// on one goroutine), and the other shards are consulted first for keys
// whose original landed elsewhere under an older shard count.
func (f *Fleet) Submit(spec JobSpec) (string, error) {
	sh := f.place(spec.PlacementKey())
	if spec.IdempotencyKey != "" && len(f.shards) > 1 {
		for _, other := range f.shards {
			if other == sh {
				continue
			}
			var id string
			var ok bool
			if err := other.do(func() { id, ok = other.svc.IdempotentID(spec.IdempotencyKey) }); err != nil {
				return "", err
			}
			if ok {
				return id, nil
			}
		}
	}
	var id string
	var err error
	doErr := sh.do(func() {
		if spec.IdempotencyKey != "" {
			if dup, ok := sh.svc.IdempotentID(spec.IdempotencyKey); ok {
				id = dup
				return
			}
		}
		if !f.reserve(spec.Tenant) {
			err = ErrTenantQuota
			return
		}
		id, err = sh.svc.Submit(spec)
		if err != nil {
			f.undoReserve(spec.Tenant)
			return
		}
		f.noteJob(id, spec.Tenant)
	})
	if doErr != nil {
		return "", doErr
	}
	return id, err
}

// Cancel aborts a job on its owning shard's driver.
func (f *Fleet) Cancel(id string) error {
	sh := f.shardFor(id)
	var cErr error
	if doErr := sh.do(func() { cErr = sh.svc.Cancel(id) }); doErr != nil {
		return doErr
	}
	return cErr
}

// Replay runs a whole trace: the sorted specs are partitioned by
// placement (subsequences of a sorted trace stay sorted, so each shard
// replays its share in trace order), the shards replay concurrently,
// and the states come back interleaved in sorted-trace order. Because
// each job's result depends only on (spec, seed), the per-job outputs
// are byte-identical for any shard count — only which engine clock ran
// them differs. Replayed jobs bypass tenant quotas: a trace is a batch,
// not live admission.
func (f *Fleet) Replay(specs []JobSpec) ([]JobState, error) {
	ordered := SortTrace(specs)
	if len(f.shards) == 1 {
		sh := f.shards[0]
		var states []JobState
		if err := sh.do(func() { states = sh.svc.Replay(ordered) }); err != nil {
			return nil, err
		}
		return states, nil
	}
	parts := make([][]JobSpec, len(f.shards))
	route := make([]int, len(ordered))
	for i, spec := range ordered {
		si := f.place(spec.PlacementKey()).idx
		parts[si] = append(parts[si], spec)
		route[i] = si
	}
	results := make([][]JobState, len(f.shards))
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i := range f.shards {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := f.shards[i]
			errs[i] = sh.do(func() { results[i] = sh.svc.Replay(parts[i]) })
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cursor := make([]int, len(f.shards))
	out := make([]JobState, 0, len(ordered))
	for _, si := range route {
		out = append(out, results[si][cursor[si]])
		cursor[si]++
	}
	return out, nil
}

// Jobs returns every shard's jobs, shard by shard, each in submission
// order.
func (f *Fleet) Jobs() []JobState {
	var out []JobState
	for _, sh := range f.shards {
		out = append(out, sh.svc.Jobs()...)
	}
	return out
}

// JobInfo returns one job's state from its owning shard.
func (f *Fleet) JobInfo(id string) (JobState, bool) {
	return f.ServiceFor(id).JobInfo(id)
}

// Stats aggregates shard counters, sampling each on its own driver so
// the engine fields are read between engine events. VirtualNow is the
// max across shards (each runs its own clock); slots and counters sum.
func (f *Fleet) Stats() (Stats, error) {
	var agg Stats
	for i, sh := range f.shards {
		var st Stats
		if err := sh.do(func() { st = sh.svc.Stats() }); err != nil {
			return Stats{}, err
		}
		if i == 0 {
			agg = st
			continue
		}
		if st.VirtualNow > agg.VirtualNow {
			agg.VirtualNow = st.VirtualNow
		}
		agg.EnergyWh += st.EnergyWh
		agg.Active += st.Active
		agg.Queued += st.Queued
		agg.Submitted += st.Submitted
		agg.Done += st.Done
		agg.Failed += st.Failed
		agg.Canceled += st.Canceled
		agg.Rejected += st.Rejected
		agg.MapSlots += st.MapSlots
		agg.ReduceSlots += st.ReduceSlots
	}
	agg.Shards = len(f.shards)
	return agg, nil
}

// StartDrain stops admissions fleet-wide.
func (f *Fleet) StartDrain() {
	for _, sh := range f.shards {
		sh.svc.StartDrain()
	}
}

// ActiveTotal sums running jobs across shards, each sampled on its own
// driver.
func (f *Fleet) ActiveTotal() (int, error) {
	total := 0
	for _, sh := range f.shards {
		var n int
		if err := sh.do(func() { n = sh.svc.ActiveCount() }); err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Quiesce group-commits every shard's buffered journal records.
func (f *Fleet) Quiesce() {
	for _, sh := range f.shards {
		// A stopped shard already committed on its close path.
		_ = sh.do(sh.svc.journalQuiesce) //lint:ignore errcheck stopped shards have already committed
	}
}

// JournalErr returns the first journal failure on any shard.
func (f *Fleet) JournalErr() error {
	for _, sh := range f.shards {
		if err := sh.svc.JournalErr(); err != nil {
			return err
		}
	}
	return nil
}

// Draining reports whether the fleet is draining.
func (f *Fleet) Draining() bool { return f.shards[0].svc.Draining() }

// Close stops every shard driver and closes its service and journal
// segment. Idempotent per shard.
func (f *Fleet) Close() {
	for _, sh := range f.shards {
		sh.halt()
	}
}
