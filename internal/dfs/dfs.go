// Package dfs is a block-oriented distributed file system model that
// stands in for HDFS. Files are split into blocks; a NameNode tracks
// block-to-server replica placement so the MapReduce scheduler can make
// locality-aware decisions, exactly the information Hadoop's JobTracker
// obtains from the HDFS NameNode.
//
// Two block backings exist: in-memory byte blocks (for tests and small
// inputs) and generator-backed blocks whose content is produced
// deterministically on every read from a seed. Generator backing is the
// repository's substitution for the paper's multi-terabyte Wikipedia
// datasets: a "12.5 TB year of access logs" is represented by its block
// descriptors, and any map task that reads a block streams freshly
// generated, deterministic bytes, so precise and approximate executions
// observe identical data without the storage footprint.
package dfs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"approxhadoop/internal/stats"
)

// DefaultBlockSize mirrors classic HDFS 64 MB blocks.
const DefaultBlockSize = 64 << 20

// Block describes one file block. Open returns a fresh reader over the
// block's bytes each call; the content must be identical across calls.
type Block struct {
	FileName string
	Index    int   // position within the file
	Size     int64 // byte size (exact for byte-backed, estimated for generated)
	Items    int64 // number of records, if known up front (0 = unknown)
	Replicas []string
	// open and lines run on compute-plane workers (map attempts read
	// blocks concurrently with the scheduler); implementations must be
	// pure functions of the block content.
	//
	//approx:pure
	open func() io.ReadCloser
	//approx:pure
	lines func(carry []byte, fn func(line []byte) error) ([]byte, error)
}

// Open returns a reader over the block's raw bytes.
func (b *Block) Open() io.ReadCloser {
	return b.open()
}

// CanYieldLines reports whether the block supports the record-yielding
// fast path (Lines).
func (b *Block) CanYieldLines() bool { return b.lines != nil }

// Lines is the record-yielding fast path: it drives fn once per line of
// the block, in order, without materializing the block through an
// Open reader (no pipe, no goroutine, no scanner copy). The yielded
// slice has the trailing newline (and any preceding carriage return)
// stripped, exactly like bufio.ScanLines, and is only valid for the
// duration of the fn call — consumers that retain a line must copy it.
//
// carry, when non-nil, seeds the internal partial-line buffer so an
// attempt-owned free list can recycle it across blocks; the (possibly
// grown) buffer is returned for reuse. Blocks without a line backing
// return ErrNoLineBacking; callers fall back to Open.
func (b *Block) Lines(carry []byte, fn func(line []byte) error) ([]byte, error) {
	if b.lines == nil {
		return carry, ErrNoLineBacking
	}
	return b.lines(carry, fn)
}

// ErrNoLineBacking is returned by Lines for blocks that only support
// byte-stream reading through Open.
var ErrNoLineBacking = fmt.Errorf("dfs: block has no line-yielding backing")

// dropCR strips one trailing carriage return, mirroring bufio.ScanLines
// so both block read paths observe identical record bytes.
func dropCR(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}

// yieldByteLines walks an in-memory block's data, yielding each line as
// a subslice of data (zero copies; the final unterminated line, if any,
// is yielded too).
func yieldByteLines(data []byte, fn func(line []byte) error) error {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return fn(dropCR(data))
		}
		if err := fn(dropCR(data[:nl])); err != nil {
			return err
		}
		data = data[nl+1:]
	}
	return nil
}

// lineSplitWriter adapts a generator's byte stream into per-line fn
// calls: complete lines inside one Write are yielded as views of the
// incoming chunk; lines spanning chunk boundaries accumulate in the
// reusable carry buffer. It is the synchronous substitute for the
// pipe-goroutine-scanner chain of the Open path.
type lineSplitWriter struct {
	fn    func(line []byte) error
	carry []byte
}

func (w *lineSplitWriter) Write(p []byte) (int, error) {
	written := len(p)
	for len(p) > 0 {
		nl := bytes.IndexByte(p, '\n')
		if nl < 0 {
			w.carry = append(w.carry, p...)
			break
		}
		line := p[:nl]
		if len(w.carry) > 0 {
			w.carry = append(w.carry, line...)
			line = w.carry
		}
		if err := w.fn(dropCR(line)); err != nil {
			return 0, err
		}
		w.carry = w.carry[:0]
		p = p[nl+1:]
	}
	return written, nil
}

// finish yields the trailing unterminated line, if any.
func (w *lineSplitWriter) finish() error {
	if len(w.carry) == 0 {
		return nil
	}
	err := w.fn(dropCR(w.carry))
	w.carry = w.carry[:0]
	return err
}

// ID returns a human-readable block identifier.
func (b *Block) ID() string { return fmt.Sprintf("%s#%d", b.FileName, b.Index) }

// LiveReplicas returns the subset of b's replicas for which alive
// reports true — the replicas that survive server failures. Schedulers
// pass the cluster's liveness predicate so replica loss tracks server
// death (and recovery) on the virtual timeline.
func (b *Block) LiveReplicas(alive func(serverID string) bool) []string {
	var live []string
	for _, r := range b.Replicas {
		if alive(r) {
			live = append(live, r)
		}
	}
	return live
}

// Unrunnable reports whether b has registered replicas but none of
// them is alive: the block's data is gone and no map task can read it.
// A block with no registered replicas (never stored through a
// NameNode) is always runnable — there is no placement to lose.
func (b *Block) Unrunnable(alive func(serverID string) bool) bool {
	return len(b.Replicas) > 0 && len(b.LiveReplicas(alive)) == 0
}

// File is an immutable sequence of blocks registered with a NameNode.
type File struct {
	Name   string
	Blocks []*Block
}

// Size returns the total byte size of the file.
func (f *File) Size() int64 {
	var s int64
	for _, b := range f.Blocks {
		s += b.Size
	}
	return s
}

// NameNode maintains file metadata and block replica placement, plus
// DataNode liveness (HDFS's heartbeat view): servers marked down stop
// counting as replica holders until marked up again.
type NameNode struct {
	mu          sync.RWMutex
	files       map[string]*File
	servers     []string
	replication int
	nextServer  int
	down        map[string]bool
}

// NewNameNode creates a NameNode managing the given DataNode servers
// with the given replication factor (clamped to [1, len(servers)]).
func NewNameNode(servers []string, replication int) *NameNode {
	if replication < 1 {
		replication = 1
	}
	if len(servers) > 0 && replication > len(servers) {
		replication = len(servers)
	}
	cp := make([]string, len(servers))
	copy(cp, servers)
	return &NameNode{
		files:       make(map[string]*File),
		servers:     cp,
		replication: replication,
		down:        make(map[string]bool),
	}
}

// MarkDown records a DataNode as dead: its replicas stop counting as
// live until MarkUp.
func (nn *NameNode) MarkDown(serverID string) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.down[serverID] = true
}

// MarkUp records a DataNode as alive again (rejoin after recovery);
// its replicas count as live once more, mirroring an HDFS DataNode
// re-registering its block reports.
func (nn *NameNode) MarkUp(serverID string) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	delete(nn.down, serverID)
}

// Alive reports whether a DataNode is currently considered live.
func (nn *NameNode) Alive(serverID string) bool {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	return !nn.down[serverID]
}

// LiveReplicas returns b's replicas on DataNodes not marked down.
func (nn *NameNode) LiveReplicas(b *Block) []string {
	return b.LiveReplicas(nn.Alive)
}

// Servers returns the registered DataNode server IDs.
func (nn *NameNode) Servers() []string {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	out := make([]string, len(nn.servers))
	copy(out, nn.servers)
	return out
}

// Register places the blocks on DataNodes (round-robin with the
// replication factor, approximating HDFS placement) and records the
// file. It fails if a file with the same name already exists.
func (nn *NameNode) Register(f *File) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[f.Name]; ok {
		return fmt.Errorf("dfs: file %q already exists", f.Name)
	}
	for _, b := range f.Blocks {
		b.Replicas = b.Replicas[:0]
		for r := 0; r < nn.replication && len(nn.servers) > 0; r++ {
			b.Replicas = append(b.Replicas, nn.servers[nn.nextServer%len(nn.servers)])
			nn.nextServer++
		}
	}
	nn.files[f.Name] = f
	return nil
}

// File looks up a registered file by name.
func (nn *NameNode) File(name string) (*File, error) {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	f, ok := nn.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	return f, nil
}

// Delete removes a file's metadata.
func (nn *NameNode) Delete(name string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[name]; !ok {
		return fmt.Errorf("dfs: file %q not found", name)
	}
	delete(nn.files, name)
	return nil
}

// List returns the names of all registered files in sorted order.
func (nn *NameNode) List() []string {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	names := make([]string, 0, len(nn.files))
	for n := range nn.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// nopCloser adapts a Reader into a ReadCloser.
type nopCloser struct{ io.Reader }

func (nopCloser) Close() error { return nil }

// NewByteBlock builds a block backed by an in-memory byte slice. items
// may be 0 if unknown.
func NewByteBlock(fileName string, index int, data []byte, items int64) *Block {
	return &Block{
		FileName: fileName,
		Index:    index,
		Size:     int64(len(data)),
		Items:    items,
		open:     func() io.ReadCloser { return nopCloser{bytes.NewReader(data)} },
		lines: func(carry []byte, fn func(line []byte) error) ([]byte, error) {
			return carry, yieldByteLines(data, fn)
		},
	}
}

// RandSource is the deterministic random source handed to block
// generators (satisfied by *math/rand.Rand).
type RandSource interface{ Int63() int64 }

// LineGenerator produces the lines of one generated block. It is
// invoked with a deterministic per-block RNG and must write the same
// content for the same seed on every call. The writer is buffered by
// the caller where buffering matters (the io.Reader path); generators
// should simply write whole lines.
type LineGenerator func(blockIndex int, r RandSource, w io.Writer) error

// NewGeneratedBlock builds a block whose content is produced on demand
// by gen, seeded with seed ^ blockIndex so blocks differ but are
// reproducible. estSize/estItems are metadata hints.
func NewGeneratedBlock(fileName string, index int, seed int64, estSize, estItems int64, gen LineGenerator) *Block {
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixing constant
	blockSeed := seed ^ (int64(index)+1)*mix
	return &Block{
		FileName: fileName,
		Index:    index,
		Size:     estSize,
		Items:    estItems,
		open: func() io.ReadCloser {
			pr, pw := io.Pipe()
			go func() {
				bw := bufio.NewWriterSize(pw, 64<<10)
				err := gen(index, stats.NewRand(blockSeed), bw)
				if err == nil {
					err = bw.Flush()
				}
				//lint:ignore errcheck CloseWithError is documented to always return nil
				pw.CloseWithError(err)
			}()
			return pr
		},
		// The fast path runs the same generator synchronously into a
		// line splitter: no pipe, no per-read goroutine, no scanner
		// copy, no intermediate write buffer (generators emit whole
		// lines, so the splitter sees them directly), and the yielded
		// bytes are identical because both sinks see the exact byte
		// stream gen writes.
		lines: func(carry []byte, fn func(line []byte) error) ([]byte, error) {
			sw := lineSplitWriter{fn: fn, carry: carry[:0]}
			err := gen(index, stats.NewRand(blockSeed), &sw)
			if err == nil {
				err = sw.finish()
			}
			return sw.carry, err
		},
	}
}

// SplitText splits text content into line-aligned blocks of at most
// blockSize bytes (a line never spans blocks, like Hadoop text splits
// after record alignment) and returns the resulting file.
func SplitText(name string, content []byte, blockSize int) *File {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	f := &File{Name: name}
	start := 0
	for start < len(content) {
		end := start + blockSize
		if end >= len(content) {
			end = len(content)
		} else {
			// Extend to the end of the current line.
			for end < len(content) && content[end-1] != '\n' {
				end++
			}
		}
		chunk := content[start:end]
		items := int64(bytes.Count(chunk, []byte{'\n'}))
		if len(chunk) > 0 && chunk[len(chunk)-1] != '\n' {
			items++
		}
		f.Blocks = append(f.Blocks, NewByteBlock(name, len(f.Blocks), chunk, items))
		start = end
	}
	return f
}

// GeneratedFile builds a file of nBlocks generator-backed blocks.
func GeneratedFile(name string, nBlocks int, seed, estBlockSize, estBlockItems int64, gen LineGenerator) *File {
	f := &File{Name: name}
	for i := 0; i < nBlocks; i++ {
		f.Blocks = append(f.Blocks, NewGeneratedBlock(name, i, seed, estBlockSize, estBlockItems, gen))
	}
	return f
}
