package dfs

import (
	"bufio"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func readAll(t *testing.T, b *Block) string {
	t.Helper()
	rc := b.Open()
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read block: %v", err)
	}
	return string(data)
}

func TestSplitTextAlignment(t *testing.T) {
	content := []byte("aaa\nbbbb\ncc\ndddddd\ne\n")
	f := SplitText("t.txt", content, 6)
	if len(f.Blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(f.Blocks))
	}
	var rebuilt strings.Builder
	var items int64
	for i, b := range f.Blocks {
		s := readAll(t, b)
		if !strings.HasSuffix(s, "\n") {
			t.Errorf("block %d does not end at a line boundary: %q", i, s)
		}
		rebuilt.WriteString(s)
		items += b.Items
	}
	if rebuilt.String() != string(content) {
		t.Errorf("blocks do not reassemble the file")
	}
	if items != 5 {
		t.Errorf("item count %d, want 5", items)
	}
	if f.Size() != int64(len(content)) {
		t.Errorf("Size = %d, want %d", f.Size(), len(content))
	}
}

func TestSplitTextNoTrailingNewline(t *testing.T) {
	f := SplitText("t.txt", []byte("one\ntwo"), 100)
	if len(f.Blocks) != 1 || f.Blocks[0].Items != 2 {
		t.Errorf("want single block with 2 items, got %+v", f.Blocks)
	}
}

func TestSplitTextEmpty(t *testing.T) {
	f := SplitText("e.txt", nil, 10)
	if len(f.Blocks) != 0 {
		t.Errorf("empty content should yield no blocks")
	}
}

func TestSplitTextProperty(t *testing.T) {
	err := quick.Check(func(lines []string, bsSeed uint8) bool {
		var sb strings.Builder
		for _, l := range lines {
			sb.WriteString(strings.ReplaceAll(l, "\n", " "))
			sb.WriteByte('\n')
		}
		content := sb.String()
		bs := int(bsSeed)%64 + 1
		f := SplitText("p.txt", []byte(content), bs)
		var re strings.Builder
		for _, b := range f.Blocks {
			rc := b.Open()
			d, _ := io.ReadAll(rc)
			rc.Close()
			re.Write(d)
		}
		return re.String() == content
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestGeneratedBlockDeterministic(t *testing.T) {
	gen := func(idx int, r RandSource, w io.Writer) error {
		for i := 0; i < 10; i++ {
			if _, err := io.WriteString(w, strings.Repeat("x", int(r.Int63()%5)+1)+"\n"); err != nil {
				return err
			}
		}
		return nil
	}
	b := NewGeneratedBlock("g.txt", 3, 42, 0, 10, gen)
	first := readAll(t, b)
	second := readAll(t, b)
	if first != second {
		t.Error("generated block content must be identical across reads")
	}
	other := NewGeneratedBlock("g.txt", 4, 42, 0, 10, gen)
	if readAll(t, other) == first {
		t.Error("different block indices should generate different content")
	}
}

func TestGeneratedFile(t *testing.T) {
	f := GeneratedFile("gf", 5, 7, 100, 10, func(idx int, r RandSource, w io.Writer) error {
		_, err := io.WriteString(w, "hello\n")
		return err
	})
	if len(f.Blocks) != 5 {
		t.Fatalf("want 5 blocks, got %d", len(f.Blocks))
	}
	for i, b := range f.Blocks {
		if b.Index != i || b.Items != 10 || b.Size != 100 {
			t.Errorf("block %d metadata wrong: %+v", i, b)
		}
		if got := readAll(t, b); got != "hello\n" {
			t.Errorf("block %d content %q", i, got)
		}
	}
}

func TestNameNodePlacement(t *testing.T) {
	nn := NewNameNode([]string{"s1", "s2", "s3"}, 2)
	f := SplitText("f.txt", []byte("a\nb\nc\nd\ne\nf\n"), 2)
	if err := nn.Register(f); err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 2 {
			t.Errorf("block %d has %d replicas, want 2", b.Index, len(b.Replicas))
		}
		if b.Replicas[0] == b.Replicas[1] {
			// Round-robin adjacent placement can never duplicate with 3 servers.
			t.Errorf("block %d replicas identical: %v", b.Index, b.Replicas)
		}
	}
	got, err := nn.File("f.txt")
	if err != nil || got != f {
		t.Errorf("File lookup failed: %v", err)
	}
	if err := nn.Register(f); err == nil {
		t.Error("duplicate registration should fail")
	}
	if _, err := nn.File("missing"); err == nil {
		t.Error("missing file lookup should fail")
	}
	if names := nn.List(); len(names) != 1 || names[0] != "f.txt" {
		t.Errorf("List = %v", names)
	}
	if err := nn.Delete("f.txt"); err != nil {
		t.Error(err)
	}
	if err := nn.Delete("f.txt"); err == nil {
		t.Error("double delete should fail")
	}
}

func TestNameNodeReplicationClamp(t *testing.T) {
	nn := NewNameNode([]string{"only"}, 5)
	f := SplitText("f", []byte("x\n"), 10)
	if err := nn.Register(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks[0].Replicas) != 1 {
		t.Errorf("replication should clamp to server count")
	}
	if got := nn.Servers(); len(got) != 1 || got[0] != "only" {
		t.Errorf("Servers = %v", got)
	}
}

func TestBlockID(t *testing.T) {
	b := NewByteBlock("data.log", 7, []byte("x"), 1)
	if b.ID() != "data.log#7" {
		t.Errorf("ID = %q", b.ID())
	}
}

// TestReplicaLiveness covers the failure-model queries: live-replica
// filtering, the unrunnable condition, and NameNode liveness tracking.
func TestReplicaLiveness(t *testing.T) {
	nn := NewNameNode([]string{"s0", "s1", "s2"}, 2)
	f := SplitText("r.txt", []byte("a\nb\nc\nd\n"), 2)
	if err := nn.Register(f); err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	if len(b.Replicas) != 2 {
		t.Fatalf("expected 2 replicas, got %v", b.Replicas)
	}
	if got := nn.LiveReplicas(b); len(got) != 2 {
		t.Errorf("all replicas should be live initially: %v", got)
	}
	nn.MarkDown(b.Replicas[0])
	if got := nn.LiveReplicas(b); len(got) != 1 || got[0] != b.Replicas[1] {
		t.Errorf("one replica should survive: %v", got)
	}
	if b.Unrunnable(nn.Alive) {
		t.Error("block with a live replica must stay runnable")
	}
	nn.MarkDown(b.Replicas[1])
	if !b.Unrunnable(nn.Alive) {
		t.Error("block with no live replicas must be unrunnable")
	}
	nn.MarkUp(b.Replicas[1])
	if b.Unrunnable(nn.Alive) {
		t.Error("recovery must restore the replica")
	}
	// A block never registered with a NameNode has no placement to
	// lose and is always runnable.
	loose := NewByteBlock("loose", 0, []byte("x"), 1)
	if loose.Unrunnable(func(string) bool { return false }) {
		t.Error("replica-less block must always be runnable")
	}
}

// scanLines reads a block through Open + bufio.ScanLines, the legacy
// pull path's exact record tokenization.
func scanLines(t *testing.T, b *Block) []string {
	t.Helper()
	rc := b.Open()
	defer rc.Close()
	s := bufio.NewScanner(rc)
	s.Buffer(make([]byte, 64<<10), 16<<20)
	var lines []string
	for s.Scan() {
		lines = append(lines, s.Text())
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan block: %v", err)
	}
	return lines
}

// yieldLines reads a block through the record-yielding fast path,
// copying each view (the contract: views are only valid inside fn).
func yieldLines(t *testing.T, b *Block, carry []byte) []string {
	t.Helper()
	var lines []string
	_, err := b.Lines(carry, func(line []byte) error {
		lines = append(lines, string(line))
		return nil
	})
	if err != nil {
		t.Fatalf("yield block lines: %v", err)
	}
	return lines
}

// TestLinesMatchesScannerByteBlocks proves the zero-copy line yielder
// tokenizes byte blocks exactly like bufio.ScanLines, including empty
// lines, carriage returns, and a final unterminated line.
func TestLinesMatchesScannerByteBlocks(t *testing.T) {
	cases := []string{
		"",
		"\n",
		"a\nb\nc\n",
		"a\nb\nc",               // no trailing newline
		"one\r\ntwo\r\nthree\r", // CRLF endings plus stray trailing CR
		"\n\nmid\n\n",           // empty lines
		"solo",
		strings.Repeat("x", 70000) + "\nshort\n", // longer than one scanner buffer
	}
	for i, content := range cases {
		b := NewByteBlock("t.txt", i, []byte(content), 0)
		if !b.CanYieldLines() {
			t.Fatalf("case %d: byte block must support line yielding", i)
		}
		want := scanLines(t, b)
		got := yieldLines(t, b, nil)
		if len(got) != len(want) {
			t.Fatalf("case %d: %d yielded lines, scanner saw %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("case %d line %d: yielded %q, scanner %q", i, j, got[j], want[j])
			}
		}
	}
}

// TestLinesMatchesScannerGeneratedBlocks proves the synchronous
// generator fast path observes the identical byte stream as the
// pipe+scanner Open path, for content that spans write chunks and ends
// without a newline.
func TestLinesMatchesScannerGeneratedBlocks(t *testing.T) {
	gen := func(idx int, r RandSource, w io.Writer) error {
		for i := 0; i < 500; i++ {
			// Vary line lengths around the splitter's chunk handling,
			// with some empty and some CR-bearing lines.
			n := int(r.Int63() % 200)
			if _, err := io.WriteString(w, strings.Repeat("g", n)); err != nil {
				return err
			}
			if i%17 == 0 {
				if _, err := io.WriteString(w, "\r"); err != nil {
					return err
				}
			}
			if i != 499 { // final line unterminated
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
		}
		return nil
	}
	b := NewGeneratedBlock("gen.txt", 3, 42, 0, 500, gen)
	if !b.CanYieldLines() {
		t.Fatal("generated block must support line yielding")
	}
	want := scanLines(t, b)
	// Seed the carry with a recycled dirty buffer: reuse must not leak
	// stale bytes into yielded lines.
	carry := []byte("stale-bytes-from-previous-block")
	got := yieldLines(t, b, carry)
	if len(got) != len(want) {
		t.Fatalf("%d yielded lines, scanner saw %d", len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("line %d: yielded %q, scanner %q", j, got[j], want[j])
		}
	}
}

// TestLinesNoBacking checks the explicit fallback contract.
func TestLinesNoBacking(t *testing.T) {
	b := &Block{FileName: "opaque", Index: 0}
	if b.CanYieldLines() {
		t.Fatal("blocks without a line backing must report CanYieldLines false")
	}
	if _, err := b.Lines(nil, func([]byte) error { return nil }); err != ErrNoLineBacking {
		t.Fatalf("Lines on opaque block returned %v, want ErrNoLineBacking", err)
	}
}
