// Package harness runs the paper's evaluation: for every table and
// figure in Section 5 it regenerates the corresponding rows/series on
// the simulated cluster, reporting runtime, energy, actual error
// (approximate vs precise executions on the same data) and the 95%
// confidence intervals ApproxHadoop computed.
//
// Experiments follow the paper's methodology: each configuration is
// repeated Reps times with different seeds (the paper uses 20); for
// multi-key outputs, the reported error/interval belongs to the key
// with the maximum predicted absolute error.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"text/tabwriter"

	"approxhadoop/internal/apps"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/mapreduce"
)

// Config parameterizes a harness run.
type Config struct {
	// Scale multiplies per-block record counts (1 = default laptop
	// scale; benches use smaller values).
	Scale float64
	// Reps is the number of repetitions per data point (paper: 20).
	Reps int
	// Cluster is the simulated cluster configuration.
	Cluster cluster.Config
	// Cost converts task measurements into virtual durations; the
	// default is PaperCost(), calibrated to paper-scale seconds.
	Cost cluster.CostModel
	// Seed is the base seed; repetition r uses Seed + r.
	Seed int64
	// Out receives the printed tables (defaults to io.Discard).
	Out io.Writer
	// Parallel bounds how many simulated jobs run concurrently:
	// repetitions and independent figure cells fan out across
	// goroutines, each with its own engine, and their results are
	// folded in repetition order so every table and chart is
	// bit-identical to a sequential run. 0 = GOMAXPROCS; 1 = strictly
	// sequential.
	Parallel int
	// Workers is forwarded to Job.Workers for every job the harness
	// builds: the per-job map-compute pool size (0 = GOMAXPROCS,
	// 1 = inline).
	Workers int
}

// PaperCost returns the analytic cost model calibrated so the default
// synthetic WikiLength job (161 maps over 80 slots) lands near the
// paper's ~180 s precise runtime.
func PaperCost() cluster.AnalyticCost {
	return cluster.AnalyticCost{T0: 1.5, Tr: 0.006, Tp: 0.024, RedPerK: 0.02}
}

// Default returns the standard harness configuration.
func Default() Config {
	return Config{
		Scale:   1,
		Reps:    3,
		Cluster: cluster.DefaultConfig(),
		Cost:    PaperCost(),
		Seed:    42,
	}
}

// Runner executes experiments.
type Runner struct {
	cfg Config
	out io.Writer
	// sem bounds concurrently simulated jobs: only leaf runJob calls
	// acquire a slot, so nested fan-out (cells spawning reps) cannot
	// deadlock waiting on slots its own children hold.
	sem chan struct{}
}

// New builds a Runner, applying defaults for zero fields.
func New(cfg Config) *Runner {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	if cfg.Cluster.Servers == 0 {
		cfg.Cluster = cluster.DefaultConfig()
	}
	if cfg.Cost == nil {
		cfg.Cost = PaperCost()
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	return &Runner{cfg: cfg, out: out, sem: make(chan struct{}, cfg.Parallel)}
}

// scaleN scales a record count by the configured scale (min 10).
func (r *Runner) scaleN(n int) int {
	s := int(float64(n) * r.cfg.Scale)
	if s < 10 {
		s = 10
	}
	return s
}

// opts assembles app options for one repetition.
func (r *Runner) opts(ctl mapreduce.Controller, rep int, sleepIdle bool) apps.Options {
	return apps.Options{
		Controller: ctl,
		Cost:       r.cfg.Cost,
		Seed:       r.cfg.Seed + int64(rep)*7919,
		SleepIdle:  sleepIdle,
	}
}

// runJob executes one job on a fresh simulated cluster. It is the
// only place experiment fan-out blocks on the Parallel semaphore, and
// is safe to call from concurrent goroutines: every call gets its own
// engine, and job results depend only on (job, seed).
func (r *Runner) runJob(job *mapreduce.Job) (*mapreduce.Result, error) {
	return r.runJobOn(r.cfg.Cluster, job)
}

// runJobOn is runJob with a custom cluster configuration (used by the
// experiments that simulate the paper's DC-placement and Atom
// clusters).
func (r *Runner) runJobOn(cfg cluster.Config, job *mapreduce.Job) (*mapreduce.Result, error) {
	if job.Workers == 0 {
		job.Workers = r.cfg.Workers
	}
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	eng := cluster.New(cfg)
	return mapreduce.Run(eng, job)
}

// parallelMap runs f(0..n-1) across goroutines — one per index, with
// actual simulation work bounded by the runJob semaphore — and
// returns the lowest-index error so failure reporting does not depend
// on completion order. With Parallel=1 (or a single index) it runs
// inline.
func (r *Runner) parallelMap(n int, f func(i int) error) error {
	if n <= 1 || r.cfg.Parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			errs[i] = f(i)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WorstKey returns the output whose predicted absolute error is
// largest (finite errors preferred; an infinite bound wins only when
// nothing finite exists), which is the key the paper reports.
func WorstKey(res *mapreduce.Result) (mapreduce.KeyEstimate, bool) {
	var best mapreduce.KeyEstimate
	found := false
	bestFinite := false
	for _, o := range res.Outputs {
		finite := !math.IsInf(o.Est.Err, 1) && !math.IsNaN(o.Est.Err)
		switch {
		case !found:
			best, found, bestFinite = o, true, finite
		case finite && !bestFinite:
			best, bestFinite = o, true
		case finite == bestFinite && o.Est.Err > best.Est.Err:
			best = o
		}
	}
	return best, found
}

// ActualError compares an approximate run against the precise run: it
// returns the relative actual error and the relative CI half-width of
// the approximate run's worst (max predicted absolute error) key.
func ActualError(precise, apx *mapreduce.Result) (actualRel, ciRel float64) {
	worst, ok := WorstKey(apx)
	if !ok {
		return 0, 0
	}
	p, ok := precise.Output(worst.Key)
	if !ok || p.Est.Value == 0 {
		return math.NaN(), worst.Est.RelErr()
	}
	return math.Abs(worst.Est.Value-p.Est.Value) / math.Abs(p.Est.Value), worst.Est.RelErr()
}

// Point is one measured configuration of a sweep.
type Point struct {
	Label     string  // e.g. "drop=25% sample=10%"
	Drop      float64 // dropping ratio
	Sample    float64 // sampling ratio
	Target    float64 // target error (target-mode sweeps)
	Runtime   float64 // mean virtual seconds
	RunMin    float64
	RunMax    float64
	ActualPct float64 // mean actual error, percent
	CIPct     float64 // mean 95% CI half-width, percent
	EnergyWh  float64 // mean energy
	MapsRun   float64 // mean maps completed
}

// repeat runs `build` cfg.Reps times and aggregates runtime/energy and
// error against the per-rep precise baselines. Repetitions simulate
// concurrently (each on its own engine); the aggregation below always
// folds results in repetition order, so the float sums — and hence
// every reported mean — are bit-identical to a sequential run.
func (r *Runner) repeat(build func(rep int) (*mapreduce.Job, error), precise []*mapreduce.Result) (Point, error) {
	results := make([]*mapreduce.Result, r.cfg.Reps)
	if err := r.parallelMap(r.cfg.Reps, func(rep int) error {
		job, err := build(rep)
		if err != nil {
			return err
		}
		res, err := r.runJob(job)
		if err != nil {
			return err
		}
		results[rep] = res
		return nil
	}); err != nil {
		return Point{}, err
	}
	var p Point
	p.RunMin = math.Inf(1)
	p.RunMax = math.Inf(-1)
	var actSum, ciSum float64
	actN := 0
	for rep := 0; rep < r.cfg.Reps; rep++ {
		res := results[rep]
		p.Runtime += res.Runtime
		p.EnergyWh += res.EnergyWh
		p.MapsRun += float64(res.Counters.MapsCompleted)
		if res.Runtime < p.RunMin {
			p.RunMin = res.Runtime
		}
		if res.Runtime > p.RunMax {
			p.RunMax = res.Runtime
		}
		if precise != nil {
			act, ci := ActualError(precise[rep%len(precise)], res)
			if !math.IsNaN(act) {
				actSum += act
				actN++
			}
			if !math.IsInf(ci, 1) && !math.IsNaN(ci) {
				ciSum += ci
			}
		}
	}
	n := float64(r.cfg.Reps)
	p.Runtime /= n
	p.EnergyWh /= n
	p.MapsRun /= n
	if actN > 0 {
		p.ActualPct = actSum / float64(actN) * 100
	}
	p.CIPct = ciSum / n * 100
	return p, nil
}

// printPoints renders a sweep as an aligned table.
func (r *Runner) printPoints(title string, cols []string, rows [][]string) {
	fmt.Fprintf(r.out, "\n== %s ==\n", title)
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	//lint:ignore errcheck report output is best-effort; a failed flush of the table writer has nowhere to surface
	tw.Flush()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func pct(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f%%", v)
}
