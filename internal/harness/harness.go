// Package harness runs the paper's evaluation: for every table and
// figure in Section 5 it regenerates the corresponding rows/series on
// the simulated cluster, reporting runtime, energy, actual error
// (approximate vs precise executions on the same data) and the 95%
// confidence intervals ApproxHadoop computed.
//
// Experiments follow the paper's methodology: each configuration is
// repeated Reps times with different seeds (the paper uses 20); for
// multi-key outputs, the reported error/interval belongs to the key
// with the maximum predicted absolute error.
package harness

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"approxhadoop/internal/apps"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/mapreduce"
)

// Config parameterizes a harness run.
type Config struct {
	// Scale multiplies per-block record counts (1 = default laptop
	// scale; benches use smaller values).
	Scale float64
	// Reps is the number of repetitions per data point (paper: 20).
	Reps int
	// Cluster is the simulated cluster configuration.
	Cluster cluster.Config
	// Cost converts task measurements into virtual durations; the
	// default is PaperCost(), calibrated to paper-scale seconds.
	Cost cluster.CostModel
	// Seed is the base seed; repetition r uses Seed + r.
	Seed int64
	// Out receives the printed tables (defaults to io.Discard).
	Out io.Writer
}

// PaperCost returns the analytic cost model calibrated so the default
// synthetic WikiLength job (161 maps over 80 slots) lands near the
// paper's ~180 s precise runtime.
func PaperCost() cluster.AnalyticCost {
	return cluster.AnalyticCost{T0: 1.5, Tr: 0.006, Tp: 0.024, RedPerK: 0.02}
}

// Default returns the standard harness configuration.
func Default() Config {
	return Config{
		Scale:   1,
		Reps:    3,
		Cluster: cluster.DefaultConfig(),
		Cost:    PaperCost(),
		Seed:    42,
	}
}

// Runner executes experiments.
type Runner struct {
	cfg Config
	out io.Writer
}

// New builds a Runner, applying defaults for zero fields.
func New(cfg Config) *Runner {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	if cfg.Cluster.Servers == 0 {
		cfg.Cluster = cluster.DefaultConfig()
	}
	if cfg.Cost == nil {
		cfg.Cost = PaperCost()
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	return &Runner{cfg: cfg, out: out}
}

// scaleN scales a record count by the configured scale (min 10).
func (r *Runner) scaleN(n int) int {
	s := int(float64(n) * r.cfg.Scale)
	if s < 10 {
		s = 10
	}
	return s
}

// opts assembles app options for one repetition.
func (r *Runner) opts(ctl mapreduce.Controller, rep int, sleepIdle bool) apps.Options {
	return apps.Options{
		Controller: ctl,
		Cost:       r.cfg.Cost,
		Seed:       r.cfg.Seed + int64(rep)*7919,
		SleepIdle:  sleepIdle,
	}
}

// runJob executes one job on a fresh simulated cluster.
func (r *Runner) runJob(job *mapreduce.Job) (*mapreduce.Result, error) {
	eng := cluster.New(r.cfg.Cluster)
	return mapreduce.Run(eng, job)
}

// WorstKey returns the output whose predicted absolute error is
// largest (finite errors preferred; an infinite bound wins only when
// nothing finite exists), which is the key the paper reports.
func WorstKey(res *mapreduce.Result) (mapreduce.KeyEstimate, bool) {
	var best mapreduce.KeyEstimate
	found := false
	bestFinite := false
	for _, o := range res.Outputs {
		finite := !math.IsInf(o.Est.Err, 1) && !math.IsNaN(o.Est.Err)
		switch {
		case !found:
			best, found, bestFinite = o, true, finite
		case finite && !bestFinite:
			best, bestFinite = o, true
		case finite == bestFinite && o.Est.Err > best.Est.Err:
			best = o
		}
	}
	return best, found
}

// ActualError compares an approximate run against the precise run: it
// returns the relative actual error and the relative CI half-width of
// the approximate run's worst (max predicted absolute error) key.
func ActualError(precise, apx *mapreduce.Result) (actualRel, ciRel float64) {
	worst, ok := WorstKey(apx)
	if !ok {
		return 0, 0
	}
	p, ok := precise.Output(worst.Key)
	if !ok || p.Est.Value == 0 {
		return math.NaN(), worst.Est.RelErr()
	}
	return math.Abs(worst.Est.Value-p.Est.Value) / math.Abs(p.Est.Value), worst.Est.RelErr()
}

// Point is one measured configuration of a sweep.
type Point struct {
	Label     string  // e.g. "drop=25% sample=10%"
	Drop      float64 // dropping ratio
	Sample    float64 // sampling ratio
	Target    float64 // target error (target-mode sweeps)
	Runtime   float64 // mean virtual seconds
	RunMin    float64
	RunMax    float64
	ActualPct float64 // mean actual error, percent
	CIPct     float64 // mean 95% CI half-width, percent
	EnergyWh  float64 // mean energy
	MapsRun   float64 // mean maps completed
}

// repeat runs `build` cfg.Reps times and aggregates runtime/energy and
// error against the per-rep precise baselines.
func (r *Runner) repeat(build func(rep int) (*mapreduce.Job, error), precise []*mapreduce.Result) (Point, error) {
	var p Point
	p.RunMin = math.Inf(1)
	p.RunMax = math.Inf(-1)
	var actSum, ciSum float64
	actN := 0
	for rep := 0; rep < r.cfg.Reps; rep++ {
		job, err := build(rep)
		if err != nil {
			return p, err
		}
		res, err := r.runJob(job)
		if err != nil {
			return p, err
		}
		p.Runtime += res.Runtime
		p.EnergyWh += res.EnergyWh
		p.MapsRun += float64(res.Counters.MapsCompleted)
		if res.Runtime < p.RunMin {
			p.RunMin = res.Runtime
		}
		if res.Runtime > p.RunMax {
			p.RunMax = res.Runtime
		}
		if precise != nil {
			act, ci := ActualError(precise[rep%len(precise)], res)
			if !math.IsNaN(act) {
				actSum += act
				actN++
			}
			if !math.IsInf(ci, 1) && !math.IsNaN(ci) {
				ciSum += ci
			}
		}
	}
	n := float64(r.cfg.Reps)
	p.Runtime /= n
	p.EnergyWh /= n
	p.MapsRun /= n
	if actN > 0 {
		p.ActualPct = actSum / float64(actN) * 100
	}
	p.CIPct = ciSum / n * 100
	return p, nil
}

// printPoints renders a sweep as an aligned table.
func (r *Runner) printPoints(title string, cols []string, rows [][]string) {
	fmt.Fprintf(r.out, "\n== %s ==\n", title)
	tw := tabwriter.NewWriter(r.out, 2, 4, 2, ' ', 0)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	//lint:ignore errcheck report output is best-effort; a failed flush of the table writer has nowhere to surface
	tw.Flush()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func pct(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f%%", v)
}
