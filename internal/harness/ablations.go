package harness

import (
	"fmt"
	"io"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/apps"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Name      string
	Runtime   float64
	ActualPct float64
	CIPct     float64
}

// driftingLog builds an input whose per-record values grow with the
// block index (time-drifting data, e.g. traffic that grew over the
// year): the adversarial case for biased task ordering.
func (r *Runner) driftingLog(blocks, lines int) *dfs.File {
	gen := func(idx int, rng dfs.RandSource, bw io.Writer) error {
		for i := 0; i < lines; i++ {
			v := float64(idx+1) * (0.8 + float64(rng.Int63()%400)/1000)
			if _, err := fmt.Fprintf(bw, "traffic\t%.3f\n", v); err != nil {
				return err
			}
		}
		return nil
	}
	return dfs.GeneratedFile("drifting-log", blocks, r.cfg.Seed, int64(lines)*16, int64(lines), gen)
}

// AblationTaskOrder shows why ApproxHadoop randomizes map-task order
// (Section 4.3): with task dropping on time-drifting data, sequential
// order only ever sees the early blocks and underestimates the total
// by a wide, deterministic margin, while random order keeps the
// two-stage sample valid (unbiased).
func (r *Runner) AblationTaskOrder() ([]AblationRow, error) {
	input := r.driftingLog(32, r.scaleN(500))
	mapper := func() mapreduce.Mapper {
		return mapreduce.MapperFunc(func(rec mapreduce.Record, emit mapreduce.Emitter) {
			var key string
			var v float64
			if _, err := fmt.Sscanf(rec.Value, "%s %f", &key, &v); err == nil {
				emit.Emit(key, v)
			}
		})
	}
	build := func(seq bool, ctl mapreduce.Controller) *mapreduce.Job {
		job := &mapreduce.Job{
			Name:            "drift-sum",
			Input:           input,
			Format:          approx.ApproxTextInput{},
			NewMapper:       mapper,
			NewReduce:       func(int) mapreduce.ReduceLogic { return approx.NewMultiStageReducer(approx.OpSum) },
			Combine:         true,
			Controller:      ctl,
			Cost:            r.cfg.Cost,
			Seed:            r.cfg.Seed,
			SequentialOrder: seq,
		}
		return job
	}
	precise, err := r.runJob(build(false, nil))
	if err != nil {
		return nil, err
	}
	var out []AblationRow
	rows := [][]string{}
	for _, cfg := range []struct {
		name string
		seq  bool
	}{{"random order (ApproxHadoop)", false}, {"sequential order (ablation)", true}} {
		res, err := r.runJob(build(cfg.seq, approx.NewStatic(1, 0.5)))
		if err != nil {
			return nil, err
		}
		act, ci := ActualError(precise, res)
		row := AblationRow{Name: cfg.name, Runtime: res.Runtime, ActualPct: act * 100, CIPct: ci * 100}
		out = append(out, row)
		rows = append(rows, []string{row.Name, f1(row.Runtime), pct(row.ActualPct), pct(row.CIPct)})
	}
	r.printPoints("Ablation: map-task ordering under 50% dropping (drifting data)",
		[]string{"Configuration", "Runtime(s)", "ActualErr", "95%CI"}, rows)
	return out, nil
}

// AblationBarrier compares the barrier-less incremental reduce
// (required by online error estimation) with a conventional barrier.
func (r *Runner) AblationBarrier() ([]AblationRow, error) {
	input := r.logInput()
	build := func(barrier bool, ctl mapreduce.Controller) *mapreduce.Job {
		job := apps.ProjectPopularity(input, r.opts(ctl, 0, false))
		job.Barrier = barrier
		return job
	}
	var out []AblationRow
	rows := [][]string{}
	for _, cfg := range []struct {
		name    string
		barrier bool
		ctl     mapreduce.Controller
	}{
		{"incremental, target 1%", false, &approx.TargetError{Target: 0.01}},
		{"barrier, target 1% (controller starved)", true, &approx.TargetError{Target: 0.01}},
		{"incremental, static 25% sampling", false, approx.NewStatic(0.25, 0)},
		{"barrier, static 25% sampling", true, approx.NewStatic(0.25, 0)},
	} {
		res, err := r.runJob(build(cfg.barrier, cfg.ctl))
		if err != nil {
			return nil, err
		}
		ci := 0.0
		if worst, ok := WorstKey(res); ok {
			ci = worst.Est.RelErr() * 100
		}
		row := AblationRow{Name: cfg.name, Runtime: res.Runtime, CIPct: ci}
		out = append(out, row)
		rows = append(rows, []string{row.Name, f1(row.Runtime), pct(row.CIPct),
			fmt.Sprintf("%d maps", res.Counters.MapsCompleted)})
	}
	r.printPoints("Ablation: barrier-less incremental reduce",
		[]string{"Configuration", "Runtime(s)", "95%CI", "Work"}, rows)
	return out, nil
}

// AblationVarianceSplit contrasts dropping and sampling at the same
// effective data fraction: dropping is cheaper but wider (the design
// rationale for combining both, Section 5.2).
func (r *Runner) AblationVarianceSplit() ([]AblationRow, error) {
	input := r.logInput()
	build := func(ctl mapreduce.Controller) *mapreduce.Job {
		return apps.ProjectPopularity(input, r.opts(ctl, 0, false))
	}
	precise, err := r.runJob(build(nil))
	if err != nil {
		return nil, err
	}
	var out []AblationRow
	rows := [][]string{}
	for _, cfg := range []struct {
		name string
		ctl  mapreduce.Controller
	}{
		{"sample 25% of items", approx.NewStatic(0.25, 0)},
		{"drop 75% of tasks", approx.NewStatic(1, 0.75)},
		{"drop 50% + sample 50%", approx.NewStatic(0.5, 0.5)},
	} {
		res, err := r.runJob(build(cfg.ctl))
		if err != nil {
			return nil, err
		}
		act, ci := ActualError(precise, res)
		row := AblationRow{Name: cfg.name, Runtime: res.Runtime, ActualPct: act * 100, CIPct: ci * 100}
		out = append(out, row)
		rows = append(rows, []string{row.Name, f1(row.Runtime), pct(row.ActualPct), pct(row.CIPct)})
	}
	r.printPoints("Ablation: same 25% data fraction, different mechanisms",
		[]string{"Configuration", "Runtime(s)", "ActualErr", "95%CI"}, rows)
	return out, nil
}

// AblationCostModel runs the same approximate job under the measured
// and analytic cost models: absolute seconds differ (host time vs
// paper-calibrated), but the approximate-to-precise runtime ratio —
// the paper's reported quantity — must agree in shape.
func (r *Runner) AblationCostModel() ([]AblationRow, error) {
	input := r.logInput()
	var out []AblationRow
	rows := [][]string{}
	for _, cfg := range []struct {
		name string
		opts apps.Options
	}{
		{"measured precise", apps.Options{Seed: r.cfg.Seed}},
		{"measured sampled 10%", apps.Options{Seed: r.cfg.Seed, Controller: approx.NewStatic(0.1, 0)}},
		{"analytic precise", apps.Options{Seed: r.cfg.Seed, Cost: PaperCost()}},
		{"analytic sampled 10%", apps.Options{Seed: r.cfg.Seed, Cost: PaperCost(), Controller: approx.NewStatic(0.1, 0)}},
	} {
		res, err := r.runJob(apps.ProjectPopularity(input, cfg.opts))
		if err != nil {
			return nil, err
		}
		row := AblationRow{Name: cfg.name, Runtime: res.Runtime}
		out = append(out, row)
		rows = append(rows, []string{row.Name, fmt.Sprintf("%.4f", res.Runtime)})
	}
	r.printPoints("Ablation: measured vs analytic cost model",
		[]string{"Configuration", "Runtime(s)"}, rows)
	return out, nil
}
