package harness

import (
	"fmt"

	"approxhadoop/internal/apps"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/workload"
)

// This file runs the sketch-plane scenarios (distinct editors per
// project, top-k hot pages) in both map-output representations. The
// pairs run is the exact baseline; the sketch run ships one fixed-size
// sketch per (partition, group) instead of one pair per element, so the
// interesting column is shuffle bytes, not just runtime.

// editInput builds the scaled Wikipedia edit log.
func (r *Runner) editInput() *dfs.File {
	e := workload.DefaultEditLog()
	e.LinesPerBlock = r.scaleN(e.LinesPerBlock)
	return e.File("wiki-edit-log")
}

// SketchRow is one (application, representation) measurement.
type SketchRow struct {
	App          string
	Repr         string // "sketch" or "pairs"
	Runtime      float64
	ShuffleBytes int64
	Keys         int
}

// sketchScenarios enumerates the scenario builders shared by both
// representations so the comparison runs on identical inputs.
func (r *Runner) sketchScenarios() []struct {
	name  string
	build func(opts apps.SketchOptions) *mapreduce.Job
} {
	edits := r.editInput()
	accesses := r.logInput()
	return []struct {
		name  string
		build func(opts apps.SketchOptions) *mapreduce.Job
	}{
		{"WikiDistinctEditors", func(o apps.SketchOptions) *mapreduce.Job {
			return apps.WikiDistinctEditors(edits, o)
		}},
		{"WikiTopPages", func(o apps.SketchOptions) *mapreduce.Job {
			return apps.WikiTopPages(accesses, o)
		}},
	}
}

// runSketchRepr runs every sketch scenario under one representation.
func (r *Runner) runSketchRepr(useSketch bool) ([]SketchRow, error) {
	repr := "pairs"
	if useSketch {
		repr = "sketch"
	}
	scenarios := r.sketchScenarios()
	rows := make([]SketchRow, len(scenarios))
	if err := r.parallelMap(len(scenarios), func(i int) error {
		sc := scenarios[i]
		res, err := r.runJob(sc.build(apps.SketchOptions{
			Options: r.opts(nil, 0, false),
			Sketch:  useSketch,
		}))
		if err != nil {
			return fmt.Errorf("%s (%s): %w", sc.name, repr, err)
		}
		rows[i] = SketchRow{
			App:          sc.name,
			Repr:         repr,
			Runtime:      res.Runtime,
			ShuffleBytes: res.Counters.ShuffleBytes,
			Keys:         len(res.Outputs),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// printSketchRows renders one representation's measurements.
func (r *Runner) printSketchRows(title string, rows []SketchRow) {
	printed := make([][]string, 0, len(rows))
	for _, row := range rows {
		printed = append(printed, []string{
			row.App, row.Repr, f1(row.Runtime),
			fmt.Sprintf("%d", row.ShuffleBytes),
			fmt.Sprintf("%d", row.Keys),
		})
	}
	r.printPoints(title,
		[]string{"Application", "Repr", "Runtime(s)", "ShuffleBytes", "Keys"}, printed)
}

// SketchPairs runs the scenarios with composite-pair map output (exact
// baseline, map-side combining on).
func (r *Runner) SketchPairs() ([]SketchRow, error) {
	rows, err := r.runSketchRepr(false)
	if err != nil {
		return nil, err
	}
	r.printSketchRows("Sketch scenarios: composite-pairs baseline", rows)
	return rows, nil
}

// Sketch runs the scenarios with sketch-compressed map output. It runs
// ONLY the sketch representation so its shuffle-volume delta in an
// approxbench trajectory is purely the sketch plane's; run it together
// with SketchPairs ("-experiment sketchpairs,sketch") to record the
// reduction factor in one file.
func (r *Runner) Sketch() ([]SketchRow, error) {
	rows, err := r.runSketchRepr(true)
	if err != nil {
		return nil, err
	}
	r.printSketchRows("Sketch scenarios: sketch-compressed shuffle", rows)
	return rows, nil
}

// SketchCompare runs both representations on identical inputs and
// prints the per-application shuffle-volume reduction.
func (r *Runner) SketchCompare() ([]SketchRow, error) {
	pairs, err := r.runSketchRepr(false)
	if err != nil {
		return nil, err
	}
	sk, err := r.runSketchRepr(true)
	if err != nil {
		return nil, err
	}
	printed := make([][]string, 0, len(sk))
	for i := range sk {
		red := "-"
		if sk[i].ShuffleBytes > 0 {
			red = fmt.Sprintf("%.1fx", float64(pairs[i].ShuffleBytes)/float64(sk[i].ShuffleBytes))
		}
		printed = append(printed, []string{
			sk[i].App,
			fmt.Sprintf("%d", pairs[i].ShuffleBytes),
			fmt.Sprintf("%d", sk[i].ShuffleBytes),
			red,
		})
	}
	r.printPoints("Sketch vs pairs: shuffle volume",
		[]string{"Application", "Pairs bytes", "Sketch bytes", "Reduction"}, printed)
	return append(pairs, sk...), nil
}
