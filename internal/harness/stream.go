// The windowed-accuracy experiment of the streaming plane: run a
// continuous query under an adaptive SLO controller across a 3x
// diurnal input-rate swing, rerun the identical arrival trace exactly,
// and report per-window realized error, CI coverage, and modeled
// latency. A fixed-plan run on the same trace is the comparison point:
// it shows what the swing does to a sampling ratio nobody retunes.
package harness

import (
	"fmt"
	"math"
	"sort"

	"approxhadoop/internal/apps"
	"approxhadoop/internal/stream"
	"approxhadoop/internal/workload"
)

// StreamWindowRow is one window of the adaptive run, paired with its
// exact ground truth.
type StreamWindowRow struct {
	Index    int64   `json:"index"`
	Records  int64   `json:"records"`
	Rate     float64 `json:"rate"` // realized records/sec in the window
	Ratio    float64 `json:"ratio"`
	Capacity int     `json:"capacity"`
	KeepFrac float64 `json:"keepFrac"`
	// RelErr is the realized |approx-exact|/exact; Claimed the
	// estimator's relative CI half-width (what the controller steers).
	RelErr  float64 `json:"relErr"`
	Claimed float64 `json:"claimed"`
	Covered bool    `json:"covered"`
	Latency float64 `json:"latencySecs"`
	Exact   bool    `json:"exact,omitempty"`
}

// StreamSummary aggregates one configuration's post-warmup windows
// across reps. Warmup windows (the controller's capped-growth ramp
// from the cold-start plan) are excluded from every aggregate; they
// still appear in the per-window rows.
type StreamSummary struct {
	Config     string  `json:"config"`
	Windows    int     `json:"windows"`
	Warmup     int     `json:"warmup"`   // windows excluded as cold start
	Sampled    int     `json:"sampled"`  // non-exact windows
	Degraded   int     `json:"degraded"` // windows with shed strata
	Coverage   float64 `json:"coverage"` // exact value inside the 95% CI
	MeanRelErr float64 `json:"meanRelErr"`
	P95RelErr  float64 `json:"p95RelErr"`
	P95Latency float64 `json:"p95LatencySecs"`
	// Violations counts windows whose claimed error broke the SLO
	// target — for the fixed plan, the violations an SLO *would* have
	// seen, which is exactly what the adaptive controller removes.
	Violations int `json:"violations"`
}

// StreamReport is the experiment's recorded artifact (embedded in
// approxbench trajectories as the "stream" experiment's payload).
type StreamReport struct {
	SLOTarget float64 `json:"sloTarget"`
	// RateMin/RateMax bound the realized per-window input rate — the
	// swing the controller had to ride out.
	RateMin  float64           `json:"rateMin"`
	RateMax  float64           `json:"rateMax"`
	Adaptive StreamSummary     `json:"adaptive"`
	Fixed    StreamSummary     `json:"fixed"`
	Windows  []StreamWindowRow `json:"windows"` // adaptive run, first rep
}

// streamScenario builds the experiment's pipelines: the web-bytes
// scenario over a diurnal trace whose arrivals the three runs (exact
// twin, adaptive, fixed-plan) see identically. The zero SLO runs a
// fixed plan.
func (r *Runner) streamScenario(rep int, capacity int, slo stream.SLO) *stream.Pipeline {
	seed := r.cfg.Seed + int64(rep)*7919
	maxW := int(16 * r.cfg.Scale)
	if maxW < 8 {
		maxW = 8
	}
	const rate, size = 2000.0, 5.0
	// Size the source to outlast the window budget at the peak rate.
	records := int(rate * size * float64(maxW+2) * 1.5)
	web := workload.WebLog{Blocks: 8, LinesPerBlock: records / 8, Clients: 3000, Attackers: 40, AttackRate: 0.02, Seed: 8}
	return apps.WebBytesStream(web, apps.StreamOptions{
		Seed:       seed,
		Rate:       workload.DiurnalRate(rate, 0.5, 60),
		Window:     stream.Window{Size: size},
		SLO:        slo,
		Capacity:   capacity,
		Workers:    r.cfg.Workers,
		MaxWindows: maxW,
	})
}

// streamWarmup is the number of leading windows excluded from summary
// aggregates: the controller grows at most 4x per window from the
// cold-start plan, so reaching an SLO-sized sample from a small
// starting capacity takes two windows by construction.
const streamWarmup = 2

// streamAgg accumulates summary state across reps.
type streamAgg struct {
	relErrs, lats     []float64
	covered, sampled  int
	degraded, windows int
	warmup            int
	violations        int
}

// observe folds one (approx, exact) window pair into the aggregates
// and returns its report row. Warmup windows produce a row but touch
// no aggregate.
func (a *streamAgg) observe(approx, exact stream.WindowResult, target float64) StreamWindowRow {
	row := StreamWindowRow{
		Index:    approx.Index,
		Records:  approx.Records,
		Rate:     float64(approx.Records) / (approx.End - approx.Start),
		Ratio:    approx.Ratio(),
		Capacity: approx.Plan.Capacity,
		KeepFrac: approx.Plan.KeepFrac,
		Latency:  approx.Latency,
		Exact:    approx.Exact,
	}
	if exact.Est.Value != 0 {
		row.RelErr = math.Abs(approx.Est.Value-exact.Est.Value) / math.Abs(exact.Est.Value)
	}
	if approx.Exact {
		row.Covered = true
	} else {
		row.Claimed = approx.Est.RelErr()
		row.Covered = exact.Est.Value >= approx.Est.Lo() && exact.Est.Value <= approx.Est.Hi()
	}
	if approx.Index < streamWarmup {
		a.warmup++
		return row
	}
	a.windows++
	a.lats = append(a.lats, approx.Latency)
	if approx.Degraded {
		a.degraded++
	}
	if approx.Exact {
		return row
	}
	a.sampled++
	if row.Covered {
		a.covered++
	}
	a.relErrs = append(a.relErrs, row.RelErr)
	if target > 0 && row.Claimed > target {
		a.violations++
	}
	return row
}

// summary folds the aggregate into its reportable form.
func (a *streamAgg) summary(config string) StreamSummary {
	s := StreamSummary{
		Config:     config,
		Windows:    a.windows,
		Warmup:     a.warmup,
		Sampled:    a.sampled,
		Degraded:   a.degraded,
		Violations: a.violations,
		P95Latency: percentile(a.lats, 0.95),
		P95RelErr:  percentile(a.relErrs, 0.95),
	}
	if a.sampled > 0 {
		s.Coverage = float64(a.covered) / float64(a.sampled)
	}
	var sum float64
	for _, e := range a.relErrs {
		sum += e
	}
	if len(a.relErrs) > 0 {
		s.MeanRelErr = sum / float64(len(a.relErrs))
	}
	return s
}

// percentile returns the p-quantile of xs by nearest-rank (0 when
// empty). xs is not modified.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// StreamAccuracy runs the windowed-accuracy experiment: per rep, one
// exact twin (unbounded reservoirs — per-window ground truth), one
// adaptive run steering toward the error SLO, and one fixed-plan run
// with the adaptive run's starting capacity. The interesting claims:
// the adaptive run holds the SLO across the full rate swing while the
// fixed plan's realized error breathes with the input rate, and the
// claimed 95% intervals actually cover the exact values.
func (r *Runner) StreamAccuracy() (*StreamReport, error) {
	// The web-bytes values are heavy-tailed (CV near 5), so a 10%
	// target is the regime where sampling genuinely engages: tighter
	// targets force near-enumeration at this per-window volume and the
	// controller has nothing to trade.
	const target = 0.10
	const startCap = 64
	report := &StreamReport{SLOTarget: target, RateMin: math.Inf(1)}
	var adaptive, fixed streamAgg
	for rep := 0; rep < r.cfg.Reps; rep++ {
		exact, err := r.streamScenario(rep, 1<<20, stream.SLO{}).Run()
		if err != nil {
			return nil, fmt.Errorf("stream exact twin: %w", err)
		}
		for _, w := range exact {
			if !w.Exact {
				return nil, fmt.Errorf("stream exact twin window %d not exact", w.Index)
			}
			rate := float64(w.Records) / (w.End - w.Start)
			if rate < report.RateMin {
				report.RateMin = rate
			}
			if rate > report.RateMax {
				report.RateMax = rate
			}
		}
		adSeries, err := r.streamScenario(rep, startCap, stream.SLO{TargetRelErr: target, MaxLatency: 0.8}).Run()
		if err != nil {
			return nil, fmt.Errorf("stream adaptive run: %w", err)
		}
		fxSeries, err := r.streamScenario(rep, startCap, stream.SLO{}).Run()
		if err != nil {
			return nil, fmt.Errorf("stream fixed run: %w", err)
		}
		if len(adSeries) != len(exact) || len(fxSeries) != len(exact) {
			return nil, fmt.Errorf("stream twins diverged: %d/%d/%d windows", len(exact), len(adSeries), len(fxSeries))
		}
		for i := range adSeries {
			row := adaptive.observe(adSeries[i], exact[i], target)
			if rep == 0 {
				report.Windows = append(report.Windows, row)
			}
			fixed.observe(fxSeries[i], exact[i], target)
		}
	}
	report.Adaptive = adaptive.summary("adaptive")
	report.Fixed = fixed.summary(fmt.Sprintf("fixed cap %d", startCap))

	rows := make([][]string, 0, len(report.Windows))
	for _, w := range report.Windows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", w.Index), fmt.Sprintf("%d", w.Records), f1(w.Rate),
			fmt.Sprintf("%d", w.Capacity), f2(w.KeepFrac), f3(w.Ratio),
			pct(100 * w.RelErr), pct(100 * w.Claimed), fmt.Sprintf("%v", w.Covered), f3(w.Latency),
		})
	}
	r.printPoints("Streaming plane: adaptive windows (rep 0)",
		[]string{"Win", "Records", "Rate/s", "Cap", "Keep", "Ratio", "ActErr", "CI", "Covered", "Lat(s)"}, rows)
	sums := [][]string{}
	for _, s := range []StreamSummary{report.Adaptive, report.Fixed} {
		sums = append(sums, []string{
			s.Config, fmt.Sprintf("%d", s.Windows), fmt.Sprintf("%d", s.Sampled),
			fmt.Sprintf("%d", s.Degraded), f3(s.Coverage), pct(100 * s.MeanRelErr),
			pct(100 * s.P95RelErr), fmt.Sprintf("%d", s.Violations), f3(s.P95Latency),
		})
	}
	r.printPoints(fmt.Sprintf("Streaming plane: SLO %.0f%% across %.0f-%.0f rec/s",
		target*100, report.RateMin, report.RateMax),
		[]string{"Config", "Windows", "Sampled", "Degraded", "Coverage", "MeanErr", "P95Err", "Violations", "P95Lat(s)"}, sums)
	return report, nil
}
