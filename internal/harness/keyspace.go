package harness

import (
	"fmt"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/apps"
	"approxhadoop/internal/mapreduce"
)

// KeySpaceRow reports the missed-key behavior of one sampling ratio.
type KeySpaceRow struct {
	Sample          float64
	TrueKeys        int     // keys in the precise output
	ObservedKeys    int     // keys in the approximate output
	ChaoEstimate    float64 // extrapolated distinct-key count
	ChaoCI          float64
	MissingBound    float64 // 0-plus-bound for any unobserved key
	WorstSeenBound  float64 // widest absolute bound among observed keys
	MissedKeys      int     // keys the sample missed entirely
	MissedOverBound int     // missed keys whose true value exceeds the bound
}

// KeySpace quantifies Section 3.1's missed-intermediate-keys
// limitation and the repository's two mitigations on Page Popularity:
// sampling misses rare pages; the Chao estimator recovers the key-space
// size; and the missing-key bound is tiny next to observed-key bounds
// (the paper's ±197 vs ±33,408 WikiLength observation).
func (r *Runner) KeySpace() ([]KeySpaceRow, error) {
	input := r.logInput()
	precise, err := r.runJob(apps.PagePopularity(input, r.opts(nil, 0, false)))
	if err != nil {
		return nil, err
	}
	trueKeys := map[string]float64{}
	for _, o := range precise.Outputs {
		trueKeys[o.Key] = o.Est.Value
	}

	var out []KeySpaceRow
	rows := [][]string{}
	for _, ratio := range []float64{0.5, 0.1, 0.01} {
		// Run with direct access to the reducer instances so the
		// key-space estimators can be interrogated afterwards.
		var reducers []*approx.MultiStageReducer
		job := apps.PagePopularity(input, r.opts(approx.NewStatic(ratio, 0), 0, false))
		job.NewReduce = func(int) mapreduce.ReduceLogic {
			m := approx.NewMultiStageReducer(approx.OpSum)
			reducers = append(reducers, m)
			return m
		}
		res, err := r.runJob(job)
		if err != nil {
			return nil, err
		}
		view := mapreduce.EstimateView{
			TotalMaps:  res.Counters.MapsTotal,
			Consumed:   res.Counters.MapsCompleted,
			Dropped:    res.Counters.MapsDropped + res.Counters.MapsKilled,
			Confidence: 0.95,
		}
		row := KeySpaceRow{Sample: ratio, TrueKeys: len(trueKeys), ObservedKeys: len(res.Outputs)}
		var chaoSum, chaoCI, missing float64
		for _, m := range reducers {
			chao := m.DistinctKeys(view)
			chaoSum += chao.Value
			chaoCI += chao.Err
			if b := m.MissingKeyBound(view); b.Err > missing {
				missing = b.Err
			}
		}
		row.ChaoEstimate = chaoSum
		row.ChaoCI = chaoCI
		row.MissingBound = missing
		for _, o := range res.Outputs {
			if o.Est.Err > row.WorstSeenBound {
				row.WorstSeenBound = o.Est.Err
			}
		}
		// Validate the bound: it is a per-key 95% statement, so over
		// many missed keys a small fraction may exceed it; count them.
		seen := map[string]bool{}
		for _, o := range res.Outputs {
			seen[o.Key] = true
		}
		for k, v := range trueKeys {
			if !seen[k] {
				row.MissedKeys++
				if v > row.MissingBound {
					row.MissedOverBound++
				}
			}
		}
		out = append(out, row)
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", ratio*100),
			fmt.Sprintf("%d", row.TrueKeys),
			fmt.Sprintf("%d", row.ObservedKeys),
			fmt.Sprintf("%.0f ± %.0f", row.ChaoEstimate, row.ChaoCI),
			fmt.Sprintf("±%.1f", row.MissingBound),
			fmt.Sprintf("±%.1f", row.WorstSeenBound),
			fmt.Sprintf("%d/%d", row.MissedOverBound, row.MissedKeys),
		})
	}
	r.printPoints("Key space: missed keys, Chao extrapolation, zero-plus-bound",
		[]string{"Sampling", "TrueKeys", "Observed", "Chao distinct", "MissingBound", "WorstSeenBound", "OverBound/Missed"},
		rows)
	return out, nil
}
