package harness

import (
	"bytes"
	"encoding/csv"
	"testing"
)

func TestExportPointsCSV(t *testing.T) {
	var buf bytes.Buffer
	points := []Point{
		{Label: "drop=0% sample=10%", Drop: 0, Sample: 0.1, Runtime: 53.8,
			RunMin: 53.6, RunMax: 53.9, ActualPct: 0.34, CIPct: 1.28, EnergyWh: 18.6, MapsRun: 161},
		{Label: "drop=50% sample=1%", Drop: 0.5, Sample: 0.01, Runtime: 27.8},
	}
	if err := ExportPointsCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "label" || recs[1][4] != "53.8" || recs[2][2] != "0.01" {
		t.Errorf("csv content: %v", recs)
	}
}

func TestExportFig5AndFig13CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportFig5CSV(&buf, []Fig5Row{{Key: "proj1", Precise: 100, Approx: 98, CI: 4}}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil || len(recs) != 2 || recs[1][0] != "proj1" {
		t.Fatalf("fig5 csv: %v %v", recs, err)
	}
	buf.Reset()
	if err := ExportFig13CSV(&buf, []Fig13Row{{Days: 7, PreciseSecs: 31.5, ApproxSecs: 31.5, Speedup: 1}}); err != nil {
		t.Fatal(err)
	}
	recs, err = csv.NewReader(&buf).ReadAll()
	if err != nil || len(recs) != 2 || recs[1][0] != "7" {
		t.Fatalf("fig13 csv: %v %v", recs, err)
	}
}
