package harness

import "testing"

func TestKeySpace(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.KeySpace()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.ObservedKeys > row.TrueKeys {
			t.Errorf("observed %d cannot exceed true %d", row.ObservedKeys, row.TrueKeys)
		}
		if row.ChaoEstimate < float64(row.ObservedKeys) {
			t.Errorf("Chao %v below observed %d", row.ChaoEstimate, row.ObservedKeys)
		}
		if row.MissingBound <= 0 {
			t.Errorf("missing-key bound %v should be positive", row.MissingBound)
		}
		if row.MissingBound >= row.WorstSeenBound {
			t.Errorf("missing-key bound %v should be far below the worst observed bound %v",
				row.MissingBound, row.WorstSeenBound)
		}
		// The zero-plus-bound statement holds per key at 95%; across
		// all missed keys at most ~5% (plus slack) may exceed it.
		if row.MissedKeys > 0 {
			frac := float64(row.MissedOverBound) / float64(row.MissedKeys)
			if frac > 0.10 {
				t.Errorf("%.0f%% sampling: %.1f%% of missed keys exceed the bound",
					row.Sample*100, frac*100)
			}
		}
	}
	// Heavier sampling observes at least as many keys.
	if rows[0].ObservedKeys < rows[2].ObservedKeys {
		t.Errorf("50%% sampling observed fewer keys (%d) than 1%% (%d)",
			rows[0].ObservedKeys, rows[2].ObservedKeys)
	}
}
