package harness

import (
	"bytes"
	"testing"
)

// TestParallelHarnessIdentical verifies the harness's concurrency
// layer is invisible: running figure sweeps with Parallel=4 and
// per-job worker pools must render byte-identical tables and charts
// to a strictly sequential run, because rep results fold in
// repetition order and cells print in grid order.
func TestParallelHarnessIdentical(t *testing.T) {
	run := func(parallel, workers int) string {
		var buf bytes.Buffer
		cfg := Default()
		cfg.Scale = 0.02
		cfg.Reps = 2
		cfg.Out = &buf
		cfg.Parallel = parallel
		cfg.Workers = workers
		r := New(cfg)
		if _, err := r.Fig6(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Fig9a(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Fig13([]int{1, 2}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := run(1, 1)
	par := run(4, 0)
	if seq != par {
		t.Errorf("parallel harness output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
