package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ExportPointsCSV writes sweep/target points as CSV for external
// plotting tools, one row per configuration.
func ExportPointsCSV(w io.Writer, points []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "drop", "sample", "target",
		"runtime_s", "runtime_min_s", "runtime_max_s",
		"actual_err_pct", "ci95_pct", "energy_wh", "maps_run"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range points {
		if err := cw.Write([]string{
			p.Label, f(p.Drop), f(p.Sample), f(p.Target),
			f(p.Runtime), f(p.RunMin), f(p.RunMax),
			f(p.ActualPct), f(p.CIPct), f(p.EnergyWh), f(p.MapsRun),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportFig5CSV writes per-key precise/approximate rows as CSV.
func ExportFig5CSV(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"key", "precise", "approx", "ci95"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Key,
			fmt.Sprintf("%g", r.Precise), fmt.Sprintf("%g", r.Approx), fmt.Sprintf("%g", r.CI)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportFig13CSV writes the scaling series as CSV.
func ExportFig13CSV(w io.Writer, rows []Fig13Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"days", "projpop_precise_s", "projpop_approx_s", "projpop_speedup",
		"approx_ci_pct", "pagepop_precise_s", "pagepop_approx_s", "pagepop_speedup"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			strconv.Itoa(r.Days),
			fmt.Sprintf("%g", r.PreciseSecs), fmt.Sprintf("%g", r.ApproxSecs), fmt.Sprintf("%g", r.Speedup),
			fmt.Sprintf("%g", r.ApproxCI),
			fmt.Sprintf("%g", r.PagePrecise), fmt.Sprintf("%g", r.PageApprox), fmt.Sprintf("%g", r.PageSpeedup),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
