package harness

import (
	"fmt"
	"math"
	"sort"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/apps"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/plot"
	"approxhadoop/internal/workload"
)

// ---------------------------------------------------------------------------
// Inputs (scaled by Config.Scale)
// ---------------------------------------------------------------------------

func (r *Runner) wikiInput() *dfs.File {
	w := workload.DefaultWikiDump()
	w.ArticlesPerBlock = r.scaleN(w.ArticlesPerBlock)
	return w.File("wiki-dump")
}

func (r *Runner) logInput() *dfs.File {
	a := workload.DefaultAccessLog()
	a.LinesPerBlock = r.scaleN(a.LinesPerBlock)
	return a.File("wiki-access-log")
}

func (r *Runner) webInput() *dfs.File {
	w := workload.DefaultWebLog()
	w.LinesPerBlock = r.scaleN(w.LinesPerBlock)
	return w.File("webserver-log")
}

// ---------------------------------------------------------------------------
// Table 1: application inventory
// ---------------------------------------------------------------------------

// Table1 prints the application inventory and smoke-runs each
// aggregation application at tiny scale to prove the row is real.
func (r *Runner) Table1() ([]apps.Spec, error) {
	specs := apps.Registry()
	rows := make([][]string, 0, len(specs))
	for _, s := range specs {
		mech := ""
		if s.Sampling {
			mech += "S"
		}
		if s.Dropping {
			mech += "D"
		}
		if s.UserDefined {
			mech += "U"
		}
		rows = append(rows, []string{s.Name, s.Domain, s.Input, mech, s.ErrEst})
	}
	r.printPoints("Table 1: applications",
		[]string{"Application", "Domain", "Input", "Approx", "ErrEst"}, rows)
	return specs, nil
}

// ---------------------------------------------------------------------------
// Table 2: access-log sizes per period
// ---------------------------------------------------------------------------

// Table2Row is one period of the scaling dataset.
type Table2Row struct {
	Days     int
	Accesses int64
	GB       float64 // modeled uncompressed size
	Maps     int
}

// ScalingPeriods mirrors the paper's Table 2 periods in days.
func ScalingPeriods() []int { return []int{1, 2, 5, 7, 10, 14, 30, 91, 182, 365} }

const (
	blocksPerDay  = 18 // scaled-down analog of the paper's ~18 maps/day (6,500/year)
	bytesPerEntry = 32
)

// Table2 prints the scaling-series dataset descriptors.
func (r *Runner) Table2() ([]Table2Row, error) {
	lines := r.scaleN(1000)
	var out []Table2Row
	rows := [][]string{}
	for _, days := range ScalingPeriods() {
		cfg := workload.ScaledAccessLog(days, blocksPerDay, lines, r.cfg.Seed)
		row := Table2Row{
			Days:     days,
			Accesses: int64(cfg.Blocks) * int64(cfg.LinesPerBlock),
			GB:       float64(cfg.Blocks) * float64(cfg.LinesPerBlock) * bytesPerEntry / 1e9,
			Maps:     cfg.Blocks,
		}
		out = append(out, row)
		rows = append(rows, []string{
			fmt.Sprintf("%d days", days),
			fmt.Sprintf("%d", row.Accesses),
			fmt.Sprintf("%.3f", row.GB),
			fmt.Sprintf("%d", row.Maps),
		})
	}
	r.printPoints("Table 2: access-log sizes",
		[]string{"Period", "Accesses", "GB (uncompressed model)", "#Maps"}, rows)
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 5: result distributions with CI bars
// ---------------------------------------------------------------------------

// Fig5Row is one plotted key of a Figure 5 panel.
type Fig5Row struct {
	Key     string
	Precise float64
	Approx  float64
	CI      float64 // 95% half-width
}

// fig5Panel runs an app precise and sampled and returns the heaviest
// keys with their estimates.
func (r *Runner) fig5Panel(build func(apps.Options) *mapreduce.Job, ratio float64, topN int) ([]Fig5Row, error) {
	precise, err := r.runJob(build(r.opts(nil, 0, false)))
	if err != nil {
		return nil, err
	}
	apx, err := r.runJob(build(r.opts(approx.NewStatic(ratio, 0), 0, false)))
	if err != nil {
		return nil, err
	}
	keys := append([]mapreduce.KeyEstimate(nil), precise.Outputs...)
	sort.Slice(keys, func(i, j int) bool { return keys[i].Est.Value > keys[j].Est.Value })
	if len(keys) > topN {
		keys = keys[:topN]
	}
	var rows []Fig5Row
	for _, k := range keys {
		row := Fig5Row{Key: k.Key, Precise: k.Est.Value}
		if a, ok := apx.Output(k.Key); ok {
			row.Approx = a.Est.Value
			row.CI = a.Est.Err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5 regenerates the four panels of Figure 5.
func (r *Runner) Fig5() (map[string][]Fig5Row, error) {
	wiki := r.wikiInput()
	logf := r.logInput()
	panels := []struct {
		name  string
		build func(apps.Options) *mapreduce.Job
		ratio float64
	}{
		{"5a WikiLength (10% sampling)", func(o apps.Options) *mapreduce.Job { return apps.WikiLength(wiki, o) }, 0.1},
		{"5b WikiPageRank (10% sampling)", func(o apps.Options) *mapreduce.Job { return apps.WikiPageRank(wiki, o) }, 0.1},
		{"5c ProjectPopularity (1% sampling)", func(o apps.Options) *mapreduce.Job { return apps.ProjectPopularity(logf, o) }, 0.01},
		{"5d PagePopularity (1% sampling)", func(o apps.Options) *mapreduce.Job { return apps.PagePopularity(logf, o) }, 0.01},
	}
	// Panels are independent job pairs; simulate them concurrently and
	// print in panel order.
	panelRows := make([][]Fig5Row, len(panels))
	if err := r.parallelMap(len(panels), func(i int) error {
		rows, err := r.fig5Panel(panels[i].build, panels[i].ratio, 10)
		if err != nil {
			return fmt.Errorf("%s: %w", panels[i].name, err)
		}
		panelRows[i] = rows
		return nil
	}); err != nil {
		return nil, err
	}
	out := map[string][]Fig5Row{}
	for i, p := range panels {
		rows := panelRows[i]
		out[p.name] = rows
		printed := [][]string{}
		for _, row := range rows {
			printed = append(printed, []string{
				row.Key, f1(row.Precise),
				fmt.Sprintf("%.1f ± %.1f", row.Approx, row.CI),
			})
		}
		r.printPoints("Figure "+p.name, []string{"Key", "Precise", "Approximate (95% CI)"}, printed)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figures 6, 7, 11: dropping/sampling sweeps
// ---------------------------------------------------------------------------

// SweepRatios are the input-sampling ratios on the sweep x-axis.
var SweepRatios = []float64{1, 0.5, 0.25, 0.1, 0.05, 0.01}

// SweepDrops are the task-dropping ratios (one panel per value).
var SweepDrops = []float64{0, 0.25, 0.5}

// sweep runs the standard dropping x sampling grid for one app.
func (r *Runner) sweep(title string, build func(apps.Options) *mapreduce.Job) ([]Point, error) {
	// Per-rep precise baselines (the data is identical across reps;
	// one baseline suffices, but we honor the seeds used by reps).
	precise := make([]*mapreduce.Result, 1)
	p, err := r.runJob(build(r.opts(nil, 0, false)))
	if err != nil {
		return nil, err
	}
	precise[0] = p
	// Enumerate the grid, then simulate every cell concurrently: cell
	// results land in indexed slots and render in grid order, so the
	// table is identical to a sequential sweep.
	type cell struct{ drop, ratio float64 }
	var cells []cell
	for _, drop := range SweepDrops {
		for _, ratio := range SweepRatios {
			//lint:ignore nofloateq sweep values are exact literals from SweepDrops/SweepRatios, never computed
			if drop == 0 && ratio == 1 {
				continue // that's the precise row
			}
			cells = append(cells, cell{drop, ratio})
		}
	}
	points := make([]Point, len(cells))
	if err := r.parallelMap(len(cells), func(i int) error {
		c := cells[i]
		pt, err := r.repeat(func(rep int) (*mapreduce.Job, error) {
			return build(r.opts(approx.NewStatic(c.ratio, c.drop), rep, false)), nil
		}, precise)
		if err != nil {
			return err
		}
		pt.Drop = c.drop
		pt.Sample = c.ratio
		pt.Label = fmt.Sprintf("drop=%.0f%% sample=%.0f%%", c.drop*100, c.ratio*100)
		points[i] = pt
		return nil
	}); err != nil {
		return nil, err
	}
	rows := [][]string{{"precise", "-", f1(p.Runtime), f1(p.Runtime), f1(p.Runtime), "0%", "0%", f1(p.EnergyWh)}}
	for i, pt := range points {
		rows = append(rows, []string{
			fmt.Sprintf("drop=%.0f%%", cells[i].drop*100),
			fmt.Sprintf("%.0f%%", cells[i].ratio*100),
			f1(pt.Runtime), f1(pt.RunMin), f1(pt.RunMax),
			pct(pt.ActualPct), pct(pt.CIPct), f1(pt.EnergyWh),
		})
	}
	r.printPoints(title,
		[]string{"Dropping", "Sampling", "Runtime(s)", "min", "max", "ActualErr", "95%CI", "Energy(Wh)"},
		rows)
	r.plotSweep(title, points)
	return points, nil
}

// plotSweep renders runtime and CI charts for a dropping/sampling grid.
func (r *Runner) plotSweep(title string, points []Point) {
	runtime := plot.New(title+" — runtime", "sampling ratio", "simulated s")
	ci := plot.New(title+" — 95% CI", "sampling ratio", "percent")
	for _, drop := range SweepDrops {
		var xs, rys, cys []float64
		for _, p := range points {
			//lint:ignore nofloateq grouping by the exact sweep literal the point was built from
			if p.Drop == drop {
				xs = append(xs, p.Sample)
				rys = append(rys, p.Runtime)
				cys = append(cys, p.CIPct)
			}
		}
		name := fmt.Sprintf("drop=%.0f%%", drop*100)
		runtime.Add(name, xs, rys)
		ci.Add(name, xs, cys)
	}
	fmt.Fprintln(r.out)
	runtime.Render(r.out)
	fmt.Fprintln(r.out)
	ci.Render(r.out)
}

// Fig6 regenerates the WikiLength performance/accuracy sweep.
func (r *Runner) Fig6() ([]Point, error) {
	input := r.wikiInput()
	return r.sweep("Figure 6: WikiLength dropping/sampling sweep",
		func(o apps.Options) *mapreduce.Job { return apps.WikiLength(input, o) })
}

// Fig7 regenerates the Project Popularity sweep.
func (r *Runner) Fig7() ([]Point, error) {
	input := r.logInput()
	return r.sweep("Figure 7: ProjectPopularity dropping/sampling sweep",
		func(o apps.Options) *mapreduce.Job { return apps.ProjectPopularity(input, o) })
}

// Fig11 regenerates the web-server log sweeps (request rate and attack
// frequencies).
func (r *Runner) Fig11() (map[string][]Point, error) {
	input := r.webInput()
	out := map[string][]Point{}
	rate, err := r.sweep("Figure 11a: RequestRate (web) sweep",
		func(o apps.Options) *mapreduce.Job { return apps.WebRequestRate(input, o) })
	if err != nil {
		return nil, err
	}
	out["11a RequestRate"] = rate
	attacks, err := r.sweep("Figure 11b: AttackFrequencies sweep",
		func(o apps.Options) *mapreduce.Job { return apps.AttackFrequencies(input, o) })
	if err != nil {
		return nil, err
	}
	out["11b AttackFrequencies"] = attacks
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 8: DC placement vs executed maps
// ---------------------------------------------------------------------------

// dcCluster mirrors the paper's Fig 8 setup: 4 map slots per server.
func (r *Runner) dcCluster() cluster.Config {
	cfg := r.cfg.Cluster
	cfg.MapSlotsPerServer = 4
	return cfg
}

// dcIters scales annealing effort.
func (r *Runner) dcIters() int { return r.scaleN(1500) }

// dcCost charges the compute-bound annealing maps paper-scale
// durations (the paper's Fig 8 jobs run ~1,000-1,500 s): one search
// per map task, so the fixed term carries the whole cost.
func (r *Runner) dcCost() cluster.AnalyticCost {
	return cluster.AnalyticCost{T0: 600, Tr: 0, Tp: 0, RedPerK: 0.02}
}

// Fig8 regenerates the DC-placement dropping sweep (80 maps).
func (r *Runner) Fig8() ([]Point, error) {
	input := workload.SearchSeeds("dc-seeds", 80, r.cfg.Seed)
	cfg := apps.DCPlacementConfig{Iters: r.dcIters()}
	runDC := func(ctl mapreduce.Controller, rep int) (*mapreduce.Result, error) {
		opts := r.opts(ctl, rep, false)
		opts.Cost = r.dcCost()
		return r.runJobOn(r.dcCluster(), apps.DCPlacement(input, cfg, opts))
	}
	precise, err := runDC(nil, 0)
	if err != nil {
		return nil, err
	}
	pMin := precise.Outputs[0].Est.Value
	execs := []float64{0.875, 0.75, 0.625, 0.5, 0.375, 0.25}
	// Simulate every (executed-fraction, rep) combination concurrently,
	// then fold per cell in rep order.
	results := make([]*mapreduce.Result, len(execs)*r.cfg.Reps)
	if err := r.parallelMap(len(results), func(k int) error {
		exec, rep := execs[k/r.cfg.Reps], k%r.cfg.Reps
		res, err := runDC(approx.NewStatic(1, 1-exec), rep)
		if err != nil {
			return err
		}
		results[k] = res
		return nil
	}); err != nil {
		return nil, err
	}
	var points []Point
	rows := [][]string{{"100%", f1(precise.Runtime), "0%", "0%"}}
	for i, exec := range execs {
		var pt Point
		pt.RunMin, pt.RunMax = math.Inf(1), math.Inf(-1)
		for rep := 0; rep < r.cfg.Reps; rep++ {
			res := results[i*r.cfg.Reps+rep]
			pt.Runtime += res.Runtime
			est := res.Outputs[0].Est
			pt.ActualPct += math.Abs(est.Value-pMin) / pMin * 100
			ci := est.RelErr() * 100
			if !math.IsInf(ci, 1) {
				pt.CIPct += ci
			}
			pt.MapsRun += float64(res.Counters.MapsCompleted)
			if res.Runtime < pt.RunMin {
				pt.RunMin = res.Runtime
			}
			if res.Runtime > pt.RunMax {
				pt.RunMax = res.Runtime
			}
		}
		n := float64(r.cfg.Reps)
		pt.Runtime /= n
		pt.ActualPct /= n
		pt.CIPct /= n
		pt.MapsRun /= n
		pt.Drop = 1 - exec
		pt.Label = fmt.Sprintf("executed=%.1f%%", exec*100)
		points = append(points, pt)
		rows = append(rows, []string{
			fmt.Sprintf("%.1f%%", exec*100), f1(pt.Runtime),
			pct(pt.ActualPct), pct(pt.CIPct),
		})
	}
	r.printPoints("Figure 8: DCPlacement vs executed maps (50ms constraint)",
		[]string{"Executed maps", "Runtime(s)", "ActualErr", "95%CI"}, rows)
	return points, nil
}

// ---------------------------------------------------------------------------
// Figure 9: target error bounds
// ---------------------------------------------------------------------------

// TargetSweep are the target error bounds for Figures 9a/9b.
var TargetSweep = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.02, 0.05}

// targetSweep runs an app across target bounds with a controller
// factory.
func (r *Runner) targetSweep(title string, build func(apps.Options) *mapreduce.Job,
	mkCtl func(target float64) mapreduce.Controller, targets []float64) ([]Point, error) {
	precise, err := r.runJob(build(r.opts(nil, 0, false)))
	if err != nil {
		return nil, err
	}
	// Every target bound simulates concurrently; results fold back in
	// target order.
	points := make([]Point, len(targets))
	if err := r.parallelMap(len(targets), func(i int) error {
		target := targets[i]
		pt, err := r.repeat(func(rep int) (*mapreduce.Job, error) {
			return build(r.opts(mkCtl(target), rep, false)), nil
		}, []*mapreduce.Result{precise})
		if err != nil {
			return err
		}
		pt.Target = target
		pt.Label = fmt.Sprintf("target=%.2f%%", target*100)
		points[i] = pt
		return nil
	}); err != nil {
		return nil, err
	}
	rows := [][]string{{"precise", f1(precise.Runtime), "0%", "0%", "-"}}
	for _, pt := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f%%", pt.Target*100), f1(pt.Runtime),
			pct(pt.ActualPct), pct(pt.CIPct), f1(pt.MapsRun),
		})
	}
	r.printPoints(title,
		[]string{"Target err", "Runtime(s)", "ActualErr", "95%CI", "MapsRun"}, rows)
	chart := plot.New(title+" — runtime vs target", "target error (%)", "simulated s")
	var xs, ys, cs []float64
	for _, p := range points {
		xs = append(xs, p.Target*100)
		ys = append(ys, p.Runtime)
		cs = append(cs, p.CIPct)
	}
	chart.Add("runtime", xs, ys)
	fmt.Fprintln(r.out)
	chart.Render(r.out)
	bound := plot.New(title+" — achieved bound", "target error (%)", "95% CI (%)")
	bound.Add("achieved", xs, cs).Add("target=x", xs, xs)
	fmt.Fprintln(r.out)
	bound.Render(r.out)
	return points, nil
}

// Fig9a regenerates the Project Popularity target-error sweep.
func (r *Runner) Fig9a() ([]Point, error) {
	input := r.logInput()
	return r.targetSweep("Figure 9a: ProjectPopularity target error",
		func(o apps.Options) *mapreduce.Job { return apps.ProjectPopularity(input, o) },
		func(t float64) mapreduce.Controller { return &approx.TargetError{Target: t} },
		TargetSweep)
}

// Fig9b regenerates the Page Popularity target-error sweep with a
// pilot wave at 1% sampling.
func (r *Runner) Fig9b() ([]Point, error) {
	input := r.logInput()
	return r.targetSweep("Figure 9b: PagePopularity target error (pilot wave @1%)",
		func(o apps.Options) *mapreduce.Job { return apps.PagePopularity(input, o) },
		func(t float64) mapreduce.Controller {
			return &approx.TargetError{Target: t, Pilot: true, PilotRatio: 0.01}
		},
		[]float64{0.002, 0.005, 0.01, 0.02, 0.05})
}

// Fig9c regenerates the DC-placement target-error sweep (320 maps).
func (r *Runner) Fig9c() ([]Point, error) {
	input := workload.SearchSeeds("dc-seeds-320", 320, r.cfg.Seed)
	cfg := apps.DCPlacementConfig{Iters: r.dcIters()}
	saveCluster := r.cfg.Cluster
	saveCost := r.cfg.Cost
	r.cfg.Cluster = r.dcCluster()
	r.cfg.Cost = r.dcCost()
	defer func() { r.cfg.Cluster = saveCluster; r.cfg.Cost = saveCost }()
	return r.targetSweep("Figure 9c: DCPlacement target error (GEV)",
		func(o apps.Options) *mapreduce.Job { return apps.DCPlacement(input, cfg, o) },
		func(t float64) mapreduce.Controller { return &approx.TargetErrorGEV{Target: t} },
		[]float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.1})
}

// ---------------------------------------------------------------------------
// Figure 10: web-server log results
// ---------------------------------------------------------------------------

// Fig10 regenerates the web-log panels: hourly request rates (weekly
// shape), rates in descending order, and attack frequencies.
func (r *Runner) Fig10() (map[string][]Fig5Row, error) {
	input := r.webInput()
	out := map[string][]Fig5Row{}

	// 10a/10b: request rate per hour of the week, precise vs sampled.
	precise, err := r.runJob(apps.WebRequestRate(input, r.opts(nil, 0, false)))
	if err != nil {
		return nil, err
	}
	apx, err := r.runJob(apps.WebRequestRate(input, r.opts(approx.NewStatic(0.1, 0), 0, false)))
	if err != nil {
		return nil, err
	}
	var hours []Fig5Row
	for _, o := range precise.Outputs {
		row := Fig5Row{Key: o.Key, Precise: o.Est.Value}
		if a, ok := apx.Output(o.Key); ok {
			row.Approx = a.Est.Value
			row.CI = a.Est.Err
		}
		hours = append(hours, row)
	}
	out["10a RequestRate by hour"] = hours
	desc := append([]Fig5Row(nil), hours...)
	sort.Slice(desc, func(i, j int) bool { return desc[i].Precise > desc[j].Precise })
	out["10b RequestRate descending"] = desc

	// 10c: attack frequencies, precise vs sampled.
	pAtt, err := r.runJob(apps.AttackFrequencies(input, r.opts(nil, 0, false)))
	if err != nil {
		return nil, err
	}
	aAtt, err := r.runJob(apps.AttackFrequencies(input, r.opts(approx.NewStatic(0.1, 0), 0, false)))
	if err != nil {
		return nil, err
	}
	var att []Fig5Row
	for _, o := range pAtt.Outputs {
		row := Fig5Row{Key: o.Key, Precise: o.Est.Value}
		if a, ok := aAtt.Output(o.Key); ok {
			row.Approx = a.Est.Value
			row.CI = a.Est.Err
		}
		att = append(att, row)
	}
	sort.Slice(att, func(i, j int) bool { return att[i].Precise > att[j].Precise })
	out["10c AttackFrequencies"] = att

	for name, rows := range out {
		printed := [][]string{}
		limit := len(rows)
		if limit > 12 {
			limit = 12
		}
		for _, row := range rows[:limit] {
			printed = append(printed, []string{row.Key, f1(row.Precise),
				fmt.Sprintf("%.1f ± %.1f", row.Approx, row.CI)})
		}
		r.printPoints("Figure "+name, []string{"Key", "Precise", "Approx (95% CI)"}, printed)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 12: energy with S3
// ---------------------------------------------------------------------------

// Fig12 regenerates the energy experiment: single-wave web-log jobs
// where dropping maps cannot shorten runtime but still saves energy by
// letting idle servers sleep (S3). Reduce tasks are concentrated on two
// servers — with one reduce per server (the other experiments' layout)
// no server could ever enter S3.
func (r *Runner) Fig12() (map[string][]Point, error) {
	input := r.webInput() // 80 blocks over 80 slots: one wave
	out := map[string][]Point{}
	for _, app := range []struct {
		name  string
		build func(apps.Options) *mapreduce.Job
	}{
		{"12a RequestRate", func(o apps.Options) *mapreduce.Job { return apps.WebRequestRate(input, o) }},
		{"12b AttackFrequencies", func(o apps.Options) *mapreduce.Job { return apps.AttackFrequencies(input, o) }},
	} {
		var points []Point
		rows := [][]string{}
		for _, mapsPct := range []float64{1, 0.75, 0.5, 0.25} {
			for _, ratio := range []float64{1, 0.5, 0.25, 0.1, 0.01} {
				var ctl mapreduce.Controller
				if mapsPct < 1 || ratio < 1 {
					ctl = approx.NewStatic(ratio, 1-mapsPct)
				}
				pt, err := r.repeat(func(rep int) (*mapreduce.Job, error) {
					job := app.build(r.opts(ctl, rep, true))
					job.Reduces = 2
					return job, nil
				}, nil)
				if err != nil {
					return nil, err
				}
				pt.Drop = 1 - mapsPct
				pt.Sample = ratio
				pt.Label = fmt.Sprintf("maps=%.0f%% sample=%.0f%%", mapsPct*100, ratio*100)
				points = append(points, pt)
				rows = append(rows, []string{
					fmt.Sprintf("%.0f%%", mapsPct*100),
					fmt.Sprintf("%.0f%%", ratio*100),
					f2(pt.EnergyWh), f1(pt.Runtime),
				})
			}
		}
		out[app.name] = points
		r.printPoints("Figure "+app.name+" energy (S3 enabled)",
			[]string{"Maps", "Sampling", "Energy(Wh)", "Runtime(s)"}, rows)
		var labels []string
		var values []float64
		for _, p := range points {
			//lint:ignore nofloateq selecting the exact sweep literal 1 (full sampling), never a computed value
			if p.Sample == 1 {
				labels = append(labels, fmt.Sprintf("maps=%.0f%%", (1-p.Drop)*100))
				values = append(values, p.EnergyWh)
			}
		}
		fmt.Fprintln(r.out)
		plot.Bars(r.out, "Figure "+app.name+" — energy at 100% sampling (dropping + S3)", labels, values, " Wh")
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 13: input-size scaling
// ---------------------------------------------------------------------------

// Fig13Row is one period of the scaling experiment.
type Fig13Row struct {
	Days        int
	PreciseSecs float64
	ApproxSecs  float64
	Speedup     float64
	ApproxCI    float64 // percent
	MapsRun     int
	PagePrecise float64
	PageApprox  float64
	PageSpeedup float64
}

// Fig13 regenerates the scaling experiment on the Atom-like cluster:
// Project and Page Popularity, precise vs 1% target error, across
// Table 2 periods. Periods may be restricted for cheap runs.
func (r *Runner) Fig13(periods []int) ([]Fig13Row, error) {
	if len(periods) == 0 {
		periods = ScalingPeriods()
	}
	atom := cluster.AtomConfig()
	lines := r.scaleN(1000)
	// Periods are independent; simulate them concurrently (each period
	// still runs its four jobs in sequence so precise/approx pairs stay
	// together) and report in period order.
	out := make([]Fig13Row, len(periods))
	if err := r.parallelMap(len(periods), func(i int) error {
		days := periods[i]
		input := workload.ScaledAccessLog(days, blocksPerDay, lines, r.cfg.Seed).File(
			fmt.Sprintf("log-%dd", days))
		run := func(ctl mapreduce.Controller, build func(*dfs.File, apps.Options) *mapreduce.Job) (*mapreduce.Result, error) {
			return r.runJobOn(atom, build(input, r.opts(ctl, 0, false)))
		}
		precise, err := run(nil, apps.ProjectPopularity)
		if err != nil {
			return err
		}
		apx, err := run(&approx.TargetError{Target: 0.01}, apps.ProjectPopularity)
		if err != nil {
			return err
		}
		pagePrecise, err := run(nil, apps.PagePopularity)
		if err != nil {
			return err
		}
		pageApx, err := run(&approx.TargetError{Target: 0.01, Pilot: true, PilotRatio: 0.01},
			apps.PagePopularity)
		if err != nil {
			return err
		}
		approxCI := 0.0
		if worst, ok := WorstKey(apx); ok {
			approxCI = worst.Est.RelErr() * 100
		}
		out[i] = Fig13Row{
			Days:        days,
			PreciseSecs: precise.Runtime,
			ApproxSecs:  apx.Runtime,
			Speedup:     precise.Runtime / apx.Runtime,
			ApproxCI:    approxCI,
			MapsRun:     apx.Counters.MapsCompleted,
			PagePrecise: pagePrecise.Runtime,
			PageApprox:  pageApx.Runtime,
			PageSpeedup: pagePrecise.Runtime / pageApx.Runtime,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rows := [][]string{}
	for _, row := range out {
		rows = append(rows, []string{
			fmt.Sprintf("%d days", row.Days),
			f1(row.PreciseSecs), f1(row.ApproxSecs), f2(row.Speedup) + "x",
			pct(row.ApproxCI),
			f1(row.PagePrecise), f1(row.PageApprox), f2(row.PageSpeedup) + "x",
		})
	}
	r.printPoints("Figure 13: scaling with input size (1% target error)",
		[]string{"Period", "ProjPop precise(s)", "approx(s)", "speedup", "CI",
			"PagePop precise(s)", "approx(s)", "speedup"}, rows)
	chart := plot.New("Figure 13 — runtime vs input size", "days of log", "simulated s")
	var xs, pys, ays []float64
	for _, row := range out {
		xs = append(xs, float64(row.Days))
		pys = append(pys, row.PreciseSecs)
		ays = append(ays, row.ApproxSecs)
	}
	chart.Add("precise", xs, pys).Add("1% target", xs, ays)
	fmt.Fprintln(r.out)
	chart.Render(r.out)
	return out, nil
}

// ---------------------------------------------------------------------------
// User-defined approximation (technical report)
// ---------------------------------------------------------------------------

// UserDefRow reports one user-defined-approximation configuration.
type UserDefRow struct {
	App      string
	Variant  string
	Runtime  float64
	RealSecs float64
	Quality  float64 // app-defined quality metric
}

// UserDefined runs the K-Means and video-encoding user-defined
// approximation studies.
func (r *Runner) UserDefined() ([]UserDefRow, error) {
	var out []UserDefRow
	rows := [][]string{}

	// Video encoding: quality = mean frame quality score. The encoder
	// kernel is genuinely compute-bound, so the measured cost model
	// (scaled to cluster-like seconds) drives the virtual runtime.
	udCost := cluster.MeasuredCost{Scale: 2000}
	video := apps.VideoData("movie", 40, r.scaleN(200), r.cfg.Seed)
	for _, v := range []struct {
		name  string
		ratio float64
	}{{"precise", 0}, {"approx-50%", 0.5}, {"approx-100%", 1}} {
		opts := r.opts(nil, 0, false)
		opts.Cost = udCost
		res, err := r.runJob(apps.VideoEncoding(video,
			apps.VideoEncodingConfig{ApproxRatio: v.ratio}, opts))
		if err != nil {
			return nil, err
		}
		q, _ := res.Output("quality")
		f, _ := res.Output("frames")
		row := UserDefRow{App: "VideoEncoding", Variant: v.name,
			Runtime: res.Runtime, RealSecs: res.RealSecs,
			Quality: q.Est.Value / f.Est.Value}
		out = append(out, row)
		rows = append(rows, []string{row.App, row.Variant, f1(row.Runtime),
			fmt.Sprintf("%.3f", row.RealSecs), f2(row.Quality)})
	}

	// K-Means: quality = centroid shift vs the precise iteration.
	points := apps.KMeansData("points", 40, r.scaleN(1000), 4, r.cfg.Seed)
	base := apps.KMeansConfig{Centroids: [][2]float64{{2, 2}, {12, 2}, {2, 12}, {12, 12}}}
	udOpts := r.opts(nil, 0, false)
	udOpts.Cost = udCost
	pRes, err := r.runJob(apps.KMeansIteration(points, base, udOpts))
	if err != nil {
		return nil, err
	}
	pCent := apps.CentroidsFromResult(pRes, 4)
	out = append(out, UserDefRow{App: "KMeans", Variant: "precise",
		Runtime: pRes.Runtime, RealSecs: pRes.RealSecs, Quality: 0})
	rows = append(rows, []string{"KMeans", "precise", f1(pRes.Runtime),
		fmt.Sprintf("%.3f", pRes.RealSecs), "0.00"})
	for _, ratio := range []float64{0.5, 1} {
		cfg := base
		cfg.ApproxRatio = ratio
		res, err := r.runJob(apps.KMeansIteration(points, cfg, udOpts))
		if err != nil {
			return nil, err
		}
		shift := apps.CentroidShift(pCent, apps.CentroidsFromResult(res, 4))
		row := UserDefRow{App: "KMeans", Variant: fmt.Sprintf("approx-%.0f%%", ratio*100),
			Runtime: res.Runtime, RealSecs: res.RealSecs, Quality: shift}
		out = append(out, row)
		rows = append(rows, []string{row.App, row.Variant, f1(row.Runtime),
			fmt.Sprintf("%.3f", row.RealSecs), f3(row.Quality)})
	}
	r.printPoints("User-defined approximation (TR)",
		[]string{"App", "Variant", "Runtime(s)", "RealCompute(s)", "Quality/Shift"}, rows)
	return out, nil
}
