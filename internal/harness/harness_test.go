package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
)

// tiny returns a fast harness configuration for tests.
func tiny(t *testing.T) (*Runner, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	cfg := Default()
	cfg.Scale = 0.05
	cfg.Reps = 1
	cfg.Out = &buf
	return New(cfg), &buf
}

func TestDefaults(t *testing.T) {
	r := New(Config{})
	if !stats.AlmostEqual(r.cfg.Scale, 1, 1e-12) || r.cfg.Reps != 1 || r.cfg.Cost == nil {
		t.Errorf("defaults not applied: %+v", r.cfg)
	}
	if r.scaleN(1000) != 1000 {
		t.Error("scaleN at scale 1")
	}
	small := New(Config{Scale: 0.001})
	if small.scaleN(1000) != 10 {
		t.Error("scaleN should clamp to 10")
	}
}

func TestWorstKeyAndActualError(t *testing.T) {
	res := &mapreduce.Result{Outputs: []mapreduce.KeyEstimate{
		{Key: "a", Est: stats.Estimate{Value: 100, Err: 5}},
		{Key: "b", Est: stats.Estimate{Value: 50, Err: 9}},
		{Key: "c", Est: stats.Estimate{Value: 10, Err: math.Inf(1)}},
	}}
	worst, ok := WorstKey(res)
	if !ok || worst.Key != "b" {
		t.Errorf("worst finite key should be b, got %+v", worst)
	}
	precise := &mapreduce.Result{Outputs: []mapreduce.KeyEstimate{
		{Key: "b", Est: stats.Estimate{Value: 55}},
	}}
	act, ci := ActualError(precise, res)
	if math.Abs(act-5.0/55) > 1e-12 {
		t.Errorf("actual error %v", act)
	}
	if math.Abs(ci-9.0/50) > 1e-12 {
		t.Errorf("ci %v", ci)
	}
	if _, ok := WorstKey(&mapreduce.Result{}); ok {
		t.Error("empty result should have no worst key")
	}
	onlyInf := &mapreduce.Result{Outputs: []mapreduce.KeyEstimate{
		{Key: "x", Est: stats.Estimate{Value: 1, Err: math.Inf(1)}},
	}}
	if w, ok := WorstKey(onlyInf); !ok || w.Key != "x" {
		t.Error("all-infinite should still return a key")
	}
}

func TestTable1And2(t *testing.T) {
	r, buf := tiny(t)
	specs, err := r.Table1()
	if err != nil || len(specs) != 18 {
		t.Fatalf("table1: %v, %d specs", err, len(specs))
	}
	rows, err := r.Table2()
	if err != nil || len(rows) != 10 {
		t.Fatalf("table2: %v, %d rows", err, len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Accesses <= rows[i-1].Accesses {
			t.Error("table2 accesses should grow with period")
		}
	}
	if !strings.Contains(buf.String(), "Table 1") || !strings.Contains(buf.String(), "DCPlacement") {
		t.Error("printed output missing expected content")
	}
}

func TestFig5(t *testing.T) {
	r, _ := tiny(t)
	panels, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("panels = %d", len(panels))
	}
	for name, rows := range panels {
		if len(rows) == 0 {
			t.Errorf("panel %s empty", name)
		}
		// Heaviest keys should be approximated within their CI most of
		// the time; check the top key is present and positive.
		if rows[0].Precise <= 0 {
			t.Errorf("panel %s: top key precise = %v", name, rows[0].Precise)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	r, _ := tiny(t)
	points, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(SweepDrops)*len(SweepRatios)-1 {
		t.Fatalf("points = %d", len(points))
	}
	byCfg := map[[2]float64]Point{}
	for _, p := range points {
		byCfg[[2]float64{p.Drop, p.Sample}] = p
	}
	// Lower sampling ratio -> no slower (same dropping).
	if byCfg[[2]float64{0, 0.01}].Runtime > byCfg[[2]float64{0, 0.5}].Runtime+1e-9 {
		t.Errorf("1%% sampling should not be slower than 50%%: %+v vs %+v",
			byCfg[[2]float64{0, 0.01}], byCfg[[2]float64{0, 0.5}])
	}
	// Dropping widens CI at the same sampling ratio.
	if byCfg[[2]float64{0.5, 0.1}].CIPct <= byCfg[[2]float64{0, 0.1}].CIPct {
		t.Errorf("dropping should widen CI: %v vs %v",
			byCfg[[2]float64{0.5, 0.1}].CIPct, byCfg[[2]float64{0, 0.1}].CIPct)
	}
}

func TestFig8Shape(t *testing.T) {
	r, _ := tiny(t)
	points, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	// More dropping -> no faster is wrong; runtime must be non-increasing
	// as executed fraction falls (within waves it can plateau).
	if points[len(points)-1].Runtime > points[0].Runtime+1e-9 {
		t.Errorf("25%% executed should not run longer than 87.5%%: %v vs %v",
			points[len(points)-1].Runtime, points[0].Runtime)
	}
	for _, p := range points {
		if p.ActualPct < 0 {
			t.Errorf("negative error: %+v", p)
		}
	}
}

func TestFig9aMeetsTargets(t *testing.T) {
	r, _ := tiny(t)
	points, err := r.Fig9a()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.CIPct > p.Target*100+1e-9 {
			t.Errorf("target %.2f%%: CI %.3f%% exceeds it", p.Target*100, p.CIPct)
		}
	}
	// Looser targets must not run more maps than the tightest target.
	if points[len(points)-1].MapsRun > points[0].MapsRun {
		t.Errorf("loosest target ran more maps (%v) than tightest (%v)",
			points[len(points)-1].MapsRun, points[0].MapsRun)
	}
}

func TestFig9bPilot(t *testing.T) {
	r, _ := tiny(t)
	points, err := r.Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	// A pilot wave samples irreversibly, so a floor exists below which
	// no target can be met (the paper: "we cannot target errors lower
	// than 0.2%"). Above the floor, targets must be met; at or below
	// it, the controller degrades to running everything else precisely
	// and the CI sits at the floor.
	floor := math.Inf(1)
	for _, p := range points {
		if p.CIPct < floor {
			floor = p.CIPct
		}
	}
	for _, p := range points {
		if p.Target*100 > floor+1e-9 && p.CIPct > p.Target*100+1e-9 {
			t.Errorf("pilot target %.2f%% above floor %.3f%%: CI %.3f%% exceeds it",
				p.Target*100, floor, p.CIPct)
		}
	}
	// Loosest target must not be slower than the tightest.
	if points[len(points)-1].Runtime > points[0].Runtime+1e-9 {
		t.Errorf("loosest pilot target slower than tightest: %v vs %v",
			points[len(points)-1].Runtime, points[0].Runtime)
	}
}

func TestFig9cGEV(t *testing.T) {
	r, _ := tiny(t)
	points, err := r.Fig9c()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.CIPct > p.Target*100+1e-9 {
			t.Errorf("GEV target %.2f%%: CI %.3f%% exceeds it", p.Target*100, p.CIPct)
		}
	}
}

func TestFig10(t *testing.T) {
	r, _ := tiny(t)
	panels, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	hours := panels["10a RequestRate by hour"]
	if len(hours) != 168 {
		t.Errorf("hour rows = %d", len(hours))
	}
	desc := panels["10b RequestRate descending"]
	for i := 1; i < len(desc); i++ {
		if desc[i].Precise > desc[i-1].Precise {
			t.Fatal("descending panel not sorted")
		}
	}
	if len(panels["10c AttackFrequencies"]) == 0 {
		t.Error("attack panel empty")
	}
}

func TestFig11(t *testing.T) {
	r, _ := tiny(t)
	panels, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels["11a RequestRate"]) == 0 || len(panels["11b AttackFrequencies"]) == 0 {
		t.Error("missing sweep panels")
	}
}

func TestFig12EnergyShape(t *testing.T) {
	r, _ := tiny(t)
	panels, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	points := panels["12a RequestRate"]
	byCfg := map[[2]float64]Point{}
	for _, p := range points {
		byCfg[[2]float64{p.Drop, p.Sample}] = p
	}
	// Dropping maps saves energy even at full sampling (S3), although
	// it cannot shorten this single-wave job.
	full := byCfg[[2]float64{0, 1}]
	dropped := byCfg[[2]float64{0.75, 1}]
	if dropped.EnergyWh >= full.EnergyWh {
		t.Errorf("dropping should save energy: %v >= %v", dropped.EnergyWh, full.EnergyWh)
	}
	if dropped.Runtime < full.Runtime*0.5 {
		t.Errorf("single-wave job: dropping should not halve runtime (%v vs %v)",
			dropped.Runtime, full.Runtime)
	}
}

func TestFig13SpeedupGrows(t *testing.T) {
	r, _ := tiny(t)
	// Periods must span multiple waves of the 240-slot Atom cluster
	// (18 blocks/day): 7 days is single-wave, 91 days is ~7 waves.
	rows, err := r.Fig13([]int{7, 30, 91})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2].Speedup <= rows[0].Speedup {
		t.Errorf("speedup should grow with input: %v -> %v", rows[0].Speedup, rows[2].Speedup)
	}
	for _, row := range rows {
		if row.ApproxCI > 1.0+1e-9 {
			t.Errorf("%d days: CI %.3f%% exceeds 1%% target", row.Days, row.ApproxCI)
		}
		if row.PreciseSecs <= 0 || row.ApproxSecs <= 0 {
			t.Errorf("bad runtimes: %+v", row)
		}
	}
}

func TestUserDefined(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.UserDefined()
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]UserDefRow{}
	for _, row := range rows {
		byVariant[row.App+"/"+row.Variant] = row
	}
	v0 := byVariant["VideoEncoding/precise"]
	v1 := byVariant["VideoEncoding/approx-100%"]
	if v1.Quality >= v0.Quality {
		t.Errorf("approximate encoding should lose quality: %v >= %v", v1.Quality, v0.Quality)
	}
	if v1.RealSecs >= v0.RealSecs {
		t.Errorf("approximate encoding should cut real compute: %v >= %v", v1.RealSecs, v0.RealSecs)
	}
	k1 := byVariant["KMeans/approx-100%"]
	if k1.Quality <= 0 || k1.Quality > 2 {
		t.Errorf("kmeans shift implausible: %v", k1.Quality)
	}
}

func TestAblationTaskOrder(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.AblationTaskOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].ActualPct <= rows[0].ActualPct {
		t.Errorf("sequential order should be biased on drifting data: %v <= %v",
			rows[1].ActualPct, rows[0].ActualPct)
	}
}

func TestAblationBarrier(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.AblationBarrier()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The barrier starves the target-error controller: it cannot
	// approximate, so it runs at least as long as the incremental run.
	if rows[1].Runtime < rows[0].Runtime {
		t.Errorf("barrier target run should not beat incremental: %v < %v",
			rows[1].Runtime, rows[0].Runtime)
	}
}

func TestAblationVarianceSplit(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.AblationVarianceSplit()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Dropping-only should have the widest CI; sampling-only the narrowest.
	if rows[1].CIPct <= rows[0].CIPct {
		t.Errorf("dropping CI %.3f should exceed sampling CI %.3f", rows[1].CIPct, rows[0].CIPct)
	}
}

func TestAblationCostModel(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.AblationCostModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Runtime <= 0 {
			t.Errorf("non-positive runtime: %+v", row)
		}
	}
	// Approximation must help under the deterministic analytic model;
	// the measured model on microsecond-scale test tasks is dominated
	// by host timing noise, so only sanity-check it ran.
	if rows[3].Runtime >= rows[2].Runtime {
		t.Errorf("analytic: sampling should cut runtime (%v vs %v)", rows[3].Runtime, rows[2].Runtime)
	}
}

func TestSketchExperiments(t *testing.T) {
	r, buf := tiny(t)
	rows, err := r.SketchCompare()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 apps x 2 representations
		t.Fatalf("rows = %d", len(rows))
	}
	pairs, sk := rows[:2], rows[2:]
	for i := range sk {
		if sk[i].App != pairs[i].App {
			t.Fatalf("row order mismatch: %q vs %q", sk[i].App, pairs[i].App)
		}
		if sk[i].ShuffleBytes <= 0 || pairs[i].ShuffleBytes <= sk[i].ShuffleBytes {
			t.Errorf("%s: sketch shuffle %d should undercut pairs %d",
				sk[i].App, sk[i].ShuffleBytes, pairs[i].ShuffleBytes)
		}
		if sk[i].Keys != pairs[i].Keys {
			t.Errorf("%s: key count %d vs %d across representations",
				sk[i].App, sk[i].Keys, pairs[i].Keys)
		}
	}
	if !strings.Contains(buf.String(), "Sketch vs pairs") {
		t.Error("comparison table not printed")
	}
	if _, err := r.Sketch(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SketchPairs(); err != nil {
		t.Fatal(err)
	}
}
