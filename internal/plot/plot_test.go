package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	var buf bytes.Buffer
	c := New("Runtime vs sampling ratio", "sampling %", "seconds")
	c.Add("drop=0%", []float64{1, 5, 10, 25, 50, 100}, []float64{41, 46, 53, 75, 110, 184})
	c.Add("drop=50%", []float64{1, 5, 10, 25, 50, 100}, []float64{27, 31, 35, 49, 73, 123})
	c.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Runtime vs sampling ratio") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=drop=0%") || !strings.Contains(out, "o=drop=50%") {
		t.Errorf("missing legend: %s", out)
	}
	if !strings.Contains(out, "184") || !strings.Contains(out, "27") {
		t.Errorf("missing y-axis extremes:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Error("chart too short")
	}
	// The top row should carry the max-Y series point (184 at x=100:
	// rightmost column of the first plot row).
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Errorf("top row should contain the max point: %q", lines[1])
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	New("empty", "x", "y").Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartFiltersNonFinite(t *testing.T) {
	var buf bytes.Buffer
	c := New("t", "x", "y")
	c.Add("s", []float64{1, 2, 3}, []float64{1, math.Inf(1), math.NaN()})
	c.Render(&buf)
	if strings.Contains(buf.String(), "no data") {
		t.Error("finite points should survive filtering")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	var buf bytes.Buffer
	c := New("flat", "x", "y")
	c.Add("s", []float64{5, 5, 5}, []float64{2, 2, 2})
	c.Render(&buf) // must not panic or divide by zero
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "Energy", []string{"100% maps", "25% maps"}, []float64{100.6, 60.4}, " Wh")
	out := buf.String()
	if !strings.Contains(out, "100% maps") || !strings.Contains(out, "60.4 Wh") {
		t.Errorf("bars output:\n%s", out)
	}
	// Longer bar for larger value.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "=") <= strings.Count(lines[2], "=") {
		t.Error("bar lengths should order by value")
	}
	Bars(&buf, "empty", nil, []float64{math.NaN()}, "")
	if !strings.Contains(buf.String(), "n/a") {
		t.Error("NaN should render as n/a")
	}
}
