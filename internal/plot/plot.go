// Package plot renders small ASCII line and bar charts for the
// evaluation harness, so `approxbench` output resembles the paper's
// figures in a terminal. It is intentionally minimal: fixed-size
// canvas, linear axes, multiple series with distinct glyphs.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a renderable ASCII chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 56)
	Height int // plot-area rows (default 14)
	series []Series
}

// glyphs mark successive series.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// New creates a chart with the given title and axis labels.
func New(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series; X and Y must have equal length.
func (c *Chart) Add(name string, x, y []float64) *Chart {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	// Filter non-finite points.
	fx := make([]float64, 0, n)
	fy := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if isFinite(x[i]) && isFinite(y[i]) {
			fx = append(fx, x[i])
			fy = append(fy, y[i])
		}
	}
	c.series = append(c.series, Series{Name: name, X: fx, Y: fy})
	return c
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// bounds returns the data extents across all series.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 0, 0, 0, false
	}
	//lint:ignore nofloateq degenerate-range guard: only a bitwise-identical min and max need widening
	if xmax == xmin {
		xmax = xmin + 1
	}
	//lint:ignore nofloateq degenerate-range guard: only a bitwise-identical min and max need widening
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, true
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 56
	}
	if height <= 0 {
		height = 14
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1)))
			row = height - 1 - row // origin bottom-left
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
		// Connect consecutive points with interpolated marks.
		for i := 1; i < len(s.X); i++ {
			c.lineTo(grid, width, height, xmin, xmax, ymin, ymax,
				s.X[i-1], s.Y[i-1], s.X[i], s.Y[i], g)
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, yTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*.4g%*.4g  (%s)\n",
		strings.Repeat(" ", margin), width/2, xmin, width-width/2, xmax, c.XLabel)
	var legend []string
	for si, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	if c.YLabel != "" || len(legend) > 0 {
		fmt.Fprintf(w, "%s  y: %s   %s\n",
			strings.Repeat(" ", margin), c.YLabel, strings.Join(legend, "  "))
	}
}

// lineTo draws interpolated marks between two data points.
func (c *Chart) lineTo(grid [][]byte, width, height int, xmin, xmax, ymin, ymax, x0, y0, x1, y1 float64, g byte) {
	steps := width
	for s := 1; s < steps; s++ {
		f := float64(s) / float64(steps)
		x := x0 + (x1-x0)*f
		y := y0 + (y1-y0)*f
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
		if col >= 0 && col < width && row >= 0 && row < height && grid[row][col] == ' ' {
			grid[row][col] = '.'
		}
	}
}

// Bars renders a horizontal bar chart of labeled values to w.
func Bars(w io.Writer, title string, labels []string, values []float64, unit string) {
	fmt.Fprintf(w, "%s\n", title)
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if isFinite(v) && v > maxV {
			maxV = v
		}
		if i < len(labels) && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	const barWidth = 44
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		if !isFinite(v) {
			fmt.Fprintf(w, "  %-*s | (n/a)\n", maxLabel, label)
			continue
		}
		n := int(math.Round(v / maxV * barWidth))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-*s |%s %.4g%s\n", maxLabel, label, strings.Repeat("=", n), v, unit)
	}
}
