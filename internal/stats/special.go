package stats

import (
	"math"
	"sync"
)

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's method), following the
// classic betacf construction. It is accurate to roughly 1e-12 for the
// parameter ranges used by the t distribution.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard-normal quantile for probability p
// in (0, 1) using Acklam's rational approximation refined by one Halley
// step, which yields close to machine precision.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		//lint:ignore nofloateq boundary of the quantile domain; only an exact 1 maps to +Inf
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// TCDF is the cumulative distribution function of Student's t
// distribution with df degrees of freedom.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the quantile of Student's t distribution with df
// degrees of freedom at probability p in (0, 1). For df <= 0 it returns
// NaN. Large df falls back to the normal quantile.
func TQuantile(p, df float64) float64 {
	switch {
	case df <= 0 || math.IsNaN(p) || p <= 0 || p >= 1:
		if p == 0 {
			return math.Inf(-1)
		}
		//lint:ignore nofloateq boundary of the quantile domain; only an exact 1 maps to +Inf
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	case df > 1e7:
		return NormalQuantile(p)
	//lint:ignore nofloateq the median shortcut applies only to a literal 0.5; nearby values take the general path correctly
	case p == 0.5:
		return 0
	}
	// Exploit symmetry: solve for the upper tail then mirror.
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	// Bracket: the t quantile always exceeds the normal quantile in
	// magnitude; expand the upper bound until the CDF crosses p.
	lo := NormalQuantile(p)
	if lo < 0 {
		lo = 0
	}
	hi := lo + 1
	for TCDF(hi, df) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	// Bisection, then a couple of Newton steps via the density.
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// tCritCache memoizes two-sided t critical values: estimators and the
// target-error controller evaluate the same (confidence, df) pairs
// millions of times during feasibility searches, and the underlying
// quantile inversion costs ~10us.
var tCritCache sync.Map // [2]float64{confidence, df} -> float64

// TwoSidedT returns the critical value t_{df, 1-alpha/2} used for a
// symmetric confidence interval at level (1-alpha). For example,
// TwoSidedT(0.95, 9) is t_{9, 0.975}. Results are memoized.
func TwoSidedT(confidence float64, df float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		return math.NaN()
	}
	key := [2]float64{confidence, df}
	if v, ok := tCritCache.Load(key); ok {
		return v.(float64)
	}
	alpha := 1 - confidence
	t := TQuantile(1-alpha/2, df)
	tCritCache.Store(key, t)
	return t
}
