package stats

import (
	"math"
	"testing"
)

func TestTwoStageCount(t *testing.T) {
	ts := TwoStage{N: 4}
	for i := 0; i < 4; i++ {
		cs := ClusterSample{M: 10, Sam: 10}
		for j := 0; j < 3; j++ { // 3 matching units per cluster
			cs.Stat.Add(1)
		}
		ts.Clusters = append(ts.Clusters, cs)
	}
	est := ts.Count(0.95)
	if !AlmostEqual(est.Value, 12, 1e-12) || est.Err != 0 {
		t.Errorf("Count = %+v, want exactly 12", est)
	}
}

func TestTwoStageMeanDegenerate(t *testing.T) {
	// No clusters.
	if est := (TwoStage{N: 3}).Mean(0.95); !math.IsInf(est.Err, 1) {
		t.Errorf("empty mean should be unbounded: %+v", est)
	}
	// All-empty clusters: zero denominator.
	ts := TwoStage{N: 3, Clusters: []ClusterSample{{M: 0, Sam: 0}, {M: 0, Sam: 0}}}
	if est := ts.Mean(0.95); !math.IsInf(est.Err, 1) {
		t.Errorf("zero-size mean should be unbounded: %+v", est)
	}
	// Single partially-sampled cluster: no variance information.
	one := TwoStage{N: 5, Clusters: []ClusterSample{{M: 10, Sam: 5, Stat: RunningStat{Count: 5, Sum: 10, SumSq: 25}}}}
	if est := one.Mean(0.95); !math.IsInf(est.Err, 1) {
		t.Errorf("single-cluster mean should be unbounded: %+v", est)
	}
}

func TestTwoStageRatioDegenerate(t *testing.T) {
	if est := TwoStageRatio(5, nil, 0.95); !math.IsInf(est.Err, 1) {
		t.Errorf("empty ratio: %+v", est)
	}
	// Zero denominator total.
	cl := []BivariateCluster{{M: 10, Sam: 10}, {M: 10, Sam: 10}}
	if est := TwoStageRatio(5, cl, 0.95); !math.IsInf(est.Err, 1) {
		t.Errorf("zero-denominator ratio: %+v", est)
	}
	// Single exhaustive cluster: exact.
	var y, x RunningStat
	y.Add(4)
	y.Add(6)
	x.Add(1)
	x.Add(1)
	exact := []BivariateCluster{{M: 2, Sam: 2, Y: y, X: x, SumXY: 10}}
	est := TwoStageRatio(1, exact, 0.95)
	if !AlmostEqual(est.Value, 5, 1e-12) || est.Err != 0 {
		t.Errorf("exhaustive single-cluster ratio = %+v, want exactly 5", est)
	}
	// Single non-exhaustive cluster: unbounded.
	partial := []BivariateCluster{{M: 4, Sam: 2, Y: y, X: x, SumXY: 10}}
	if got := TwoStageRatio(3, partial, 0.95); !math.IsInf(got.Err, 1) {
		t.Errorf("partial single-cluster ratio should be unbounded: %+v", got)
	}
}

func TestWithinVarTermBoundaries(t *testing.T) {
	// Fully enumerated cluster: zero within-variance.
	full := ClusterSample{M: 5, Sam: 5, Stat: RunningStat{Count: 5, Sum: 10, SumSq: 30}}
	if got := full.withinVarTerm(); got != 0 {
		t.Errorf("exhaustive within term = %v", got)
	}
	// Single sampled unit: no variance information.
	single := ClusterSample{M: 5, Sam: 1, Stat: RunningStat{Count: 1, Sum: 2, SumSq: 4}}
	if got := single.withinVarTerm(); got != 0 {
		t.Errorf("single-unit within term = %v", got)
	}
	// Empty cluster estimate.
	empty := ClusterSample{M: 5, Sam: 0}
	if got := empty.totalEstimate(); got != 0 {
		t.Errorf("empty cluster total = %v", got)
	}
}

func TestTQuantileExtremes(t *testing.T) {
	if got := TQuantile(0, 5); !math.IsInf(got, -1) {
		t.Errorf("p=0 should be -inf: %v", got)
	}
	if got := TQuantile(1, 5); !math.IsInf(got, 1) {
		t.Errorf("p=1 should be +inf: %v", got)
	}
	if !math.IsNaN(TQuantile(0.5, -1)) {
		t.Error("negative df should be NaN")
	}
	if !math.IsNaN(TQuantile(math.NaN(), 5)) {
		t.Error("NaN p should be NaN")
	}
	// Deep tails stay finite and ordered.
	q1 := TQuantile(0.9999, 2)
	q2 := TQuantile(0.99999, 2)
	if !(q2 > q1 && q1 > 0 && !math.IsInf(q2, 1)) {
		t.Errorf("tail quantiles: %v %v", q1, q2)
	}
}

func TestParetoShape(t *testing.T) {
	r := NewRand(3)
	over := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if Pareto(r, 1, 2) > 2 {
			over++
		}
	}
	// P(X > 2) = (1/2)^2 = 0.25 for alpha=2, xm=1.
	frac := float64(over) / n
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("Pareto tail fraction %.3f, want ~0.25", frac)
	}
}
