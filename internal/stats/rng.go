package stats

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic PRNG seeded with seed. All simulator
// and workload randomness flows through explicitly seeded sources so
// experiments are reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf draws ranks in [1, n] with P(rank = k) proportional to
// 1/k^s (s > 1). It wraps math/rand's rejection-based generator.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf constructs a Zipf sampler over {1, ..., n} with exponent s.
// Exponents at or below 1 are clamped slightly above 1, which keeps the
// heavy tail the popularity workloads need while staying in the
// generator's supported range.
func NewZipf(r *rand.Rand, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	if n == 0 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(r, s, 1, n-1)}
}

// Next returns the next rank in [1, n].
func (z *Zipf) Next() uint64 { return z.z.Uint64() + 1 }

// LogNormal draws from a log-normal distribution with the given
// location and scale of the underlying normal.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto draws from a Pareto distribution with minimum xm and shape
// alpha; heavy-tailed sizes such as request or article lengths.
func Pareto(r *rand.Rand, xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly
// from [0, n) in random order (a partial Fisher-Yates shuffle). If
// k >= n it returns a permutation of all n integers.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	return perm[:k]
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}
