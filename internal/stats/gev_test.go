package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// drawGEV samples from a GEV via inverse transform.
func drawGEV(g GEV, n int, seed int64) []float64 {
	r := NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		u := r.Float64()
		//lint:ignore nofloateq rejection-sample the exact endpoints only; every interior value is valid
		for u == 0 || u == 1 {
			u = r.Float64()
		}
		out[i] = g.Quantile(u)
	}
	return out
}

func TestGEVQuantileInvertsCDF(t *testing.T) {
	err := quick.Check(func(muS, sigS, xiS, pS uint32) bool {
		g := GEV{
			Mu:    float64(muS%200) - 100,
			Sigma: 0.5 + float64(sigS%100)/10,
			Xi:    float64(xiS%100)/100 - 0.5,
		}
		p := (float64(pS%9998) + 1) / 10000
		x := g.Quantile(p)
		return AlmostEqual(g.CDF(x), p, 1e-9)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestGEVGumbelCase(t *testing.T) {
	g := GEV{Mu: 0, Sigma: 1, Xi: 0}
	// Gumbel CDF at 0 is exp(-1).
	if got, want := g.CDF(0), math.Exp(-1); !AlmostEqual(got, want, 1e-12) {
		t.Errorf("Gumbel CDF(0) = %v, want %v", got, want)
	}
	if got := g.Quantile(math.Exp(-1)); !AlmostEqual(got, 0, 1e-9) {
		t.Errorf("Gumbel quantile at exp(-1) = %v, want 0", got)
	}
}

func TestGEVSupport(t *testing.T) {
	g := GEV{Mu: 0, Sigma: 1, Xi: 0.5} // lower endpoint at -2
	if got := g.CDF(-3); got != 0 {
		t.Errorf("below support CDF = %v", got)
	}
	if !math.IsInf(g.LogPDF(-3), -1) {
		t.Error("below support LogPDF should be -Inf")
	}
	h := GEV{Mu: 0, Sigma: 1, Xi: -0.5} // upper endpoint at 2
	if got := h.CDF(3); !AlmostEqual(got, 1, 1e-12) {
		t.Errorf("above support CDF = %v", got)
	}
}

func TestFitGEVMaximaRecoversParameters(t *testing.T) {
	truth := GEV{Mu: 10, Sigma: 2, Xi: 0.1}
	sample := drawGEV(truth, 2000, 99)
	fit, err := FitGEVMaxima(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Dist.Mu-truth.Mu) > 0.3 {
		t.Errorf("Mu = %v, want ~%v", fit.Dist.Mu, truth.Mu)
	}
	if math.Abs(fit.Dist.Sigma-truth.Sigma) > 0.3 {
		t.Errorf("Sigma = %v, want ~%v", fit.Dist.Sigma, truth.Sigma)
	}
	if math.Abs(fit.Dist.Xi-truth.Xi) > 0.1 {
		t.Errorf("Xi = %v, want ~%v", fit.Dist.Xi, truth.Xi)
	}
	if !fit.HessOK {
		t.Error("information matrix should be available for a clean fit")
	}
}

func TestFitGEVMinima(t *testing.T) {
	// Minima of a process: negate a max-GEV.
	truth := GEV{Mu: 50, Sigma: 3, Xi: 0.05}
	maxima := drawGEV(truth, 1000, 21)
	minima := make([]float64, len(maxima))
	for i, v := range maxima {
		minima[i] = -v
	}
	fit, err := FitGEVMinima(minima)
	if err != nil {
		t.Fatal(err)
	}
	if !fit.ForMin {
		t.Error("ForMin should be set")
	}
	est := fit.ExtremeEstimate(0.01, 0.95)
	// The 1%-tail estimate should sit in the lower tail of the sample:
	// at or below the 3rd percentile but not absurdly below the minimum.
	lo, _ := MinMax(minima)
	if est.Value > Percentile(minima, 3) {
		t.Errorf("estimated min %v above the 3rd percentile %v", est.Value, Percentile(minima, 3))
	}
	if est.Value < lo-20*truth.Sigma {
		t.Errorf("estimated min %v implausibly far below sample min %v", est.Value, lo)
	}
}

func TestFitGEVTooSmall(t *testing.T) {
	if _, err := FitGEVMaxima([]float64{1, 2, 3}); err != ErrSampleTooSmall {
		t.Errorf("want ErrSampleTooSmall, got %v", err)
	}
}

func TestExtremeEstimateBoundsShrinkWithSample(t *testing.T) {
	truth := GEV{Mu: 0, Sigma: 1, Xi: 0.1}
	small, err := FitGEVMaxima(drawGEV(truth, 30, 5))
	if err != nil {
		t.Fatal(err)
	}
	large, err := FitGEVMaxima(drawGEV(truth, 3000, 5))
	if err != nil {
		t.Fatal(err)
	}
	es, el := small.ExtremeEstimate(0.01, 0.95), large.ExtremeEstimate(0.01, 0.95)
	if el.Err >= es.Err {
		t.Errorf("larger sample should shrink CI: small %v, large %v", es.Err, el.Err)
	}
}

func TestBlockExtrema(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2, 8, 6}
	minima := BlockExtrema(xs, 4, true)
	if len(minima) != 4 {
		t.Fatalf("want 4 blocks, got %d", len(minima))
	}
	want := []float64{1, 3, 2, 6}
	for i := range want {
		if !AlmostEqual(minima[i], want[i], 1e-12) {
			t.Errorf("block %d min = %v, want %v", i, minima[i], want[i])
		}
	}
	maxima := BlockExtrema(xs, 2, false)
	if !AlmostEqual(maxima[0], 9, 1e-12) || !AlmostEqual(maxima[1], 8, 1e-12) {
		t.Errorf("maxima = %v", maxima)
	}
	if BlockExtrema(nil, 3, true) != nil {
		t.Error("empty sample should give nil")
	}
	if got := BlockExtrema(xs, 100, true); len(got) != len(xs) {
		t.Errorf("more blocks than samples should degrade to identity, got %d", len(got))
	}
}

func TestBlockExtremaProperty(t *testing.T) {
	err := quick.Check(func(raw []float64, bSeed uint8) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		blocks := int(bSeed%8) + 1
		mins := BlockExtrema(xs, blocks, true)
		globalMin, _ := MinMax(xs)
		blockMin, _ := MinMax(mins)
		return AlmostEqual(blockMin, globalMin, 0) // global min survives blocking bit-exactly
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1) + 5
	}
	x, v := NelderMead(f, []float64{0, 0}, 0.5, 500)
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 {
		t.Errorf("minimum at %v, want (3,-1)", x)
	}
	if math.Abs(v-5) > 1e-6 {
		t.Errorf("value %v, want 5", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _ := NelderMead(f, []float64{-1.2, 1}, 0.5, 5000)
	if math.Abs(x[0]-1) > 1e-2 || math.Abs(x[1]-1) > 1e-2 {
		t.Errorf("Rosenbrock minimum at %v, want (1,1)", x)
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	called := false
	_, v := NelderMead(func([]float64) float64 { called = true; return 7 }, nil, 0.1, 10)
	if !called || !AlmostEqual(v, 7, 1e-12) {
		t.Error("empty-dimension optimization should just evaluate f")
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	x, ok := SolveLinear(a, []float64{5, 10})
	if !ok {
		t.Fatal("solve failed")
	}
	if !AlmostEqual(x[0], 1, 1e-12) || !AlmostEqual(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
	if _, ok := SolveLinear([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); ok {
		t.Error("singular system should fail")
	}
}

func TestInvertMatrix(t *testing.T) {
	a := [][]float64{{4, 7}, {2, 6}}
	inv, ok := InvertMatrix(a)
	if !ok {
		t.Fatal("invert failed")
	}
	want := [][]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := range want {
		for j := range want[i] {
			if !AlmostEqual(inv[i][j], want[i][j], 1e-12) {
				t.Errorf("inv[%d][%d] = %v, want %v", i, j, inv[i][j], want[i][j])
			}
		}
	}
	if _, ok := InvertMatrix([][]float64{{0, 0}, {0, 0}}); ok {
		t.Error("singular inversion should fail")
	}
}

func TestRNGHelpers(t *testing.T) {
	r := NewRand(1)
	z := NewZipf(r, 1.2, 100)
	counts := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		k := z.Next()
		if k < 1 || k > 100 {
			t.Fatalf("zipf rank %d out of range", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[50] {
		t.Error("rank 1 should dominate rank 50 under Zipf")
	}
	// Clamped exponent should not panic.
	_ = NewZipf(r, 0.5, 10).Next()
	_ = NewZipf(r, 2, 0).Next()

	if v := Pareto(r, 10, 2); v < 10 {
		t.Errorf("Pareto below xm: %v", v)
	}
	if v := LogNormal(r, 0, 1); v <= 0 {
		t.Errorf("LogNormal non-positive: %v", v)
	}
	s := SampleWithoutReplacement(r, 10, 4)
	if len(s) != 4 {
		t.Errorf("sample size %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", s)
		}
		seen[v] = true
	}
	if got := SampleWithoutReplacement(r, 3, 10); len(got) != 3 {
		t.Error("k>n should return n items")
	}
	trues := 0
	for i := 0; i < 1000; i++ {
		if Bernoulli(r, 0.3) {
			trues++
		}
	}
	if trues < 200 || trues > 400 {
		t.Errorf("Bernoulli(0.3) rate %d/1000 implausible", trues)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
}
