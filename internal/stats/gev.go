package stats

import (
	"errors"
	"math"
)

// GEV is a Generalized Extreme Value distribution for block MAXIMA with
// location Mu, scale Sigma (> 0) and shape Xi. The Fisher-Tippett-
// Gnedenko theorem states the maximum of n IID variables converges (if
// it converges) to this family. Minima are handled by negation: see
// FitGEVMinima.
type GEV struct {
	Mu    float64
	Sigma float64
	Xi    float64
}

// CDF returns P(X <= x).
func (g GEV) CDF(x float64) float64 {
	s := (x - g.Mu) / g.Sigma
	if g.Xi == 0 {
		return math.Exp(-math.Exp(-s))
	}
	t := 1 + g.Xi*s
	if t <= 0 {
		if g.Xi > 0 {
			return 0 // below the lower endpoint
		}
		return 1 // above the upper endpoint
	}
	return math.Exp(-math.Pow(t, -1/g.Xi))
}

// Quantile returns the value x with CDF(x) = p for p in (0, 1).
func (g GEV) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	l := -math.Log(p)
	if g.Xi == 0 {
		return g.Mu - g.Sigma*math.Log(l)
	}
	return g.Mu + g.Sigma/g.Xi*(math.Pow(l, -g.Xi)-1)
}

// LogPDF returns the log density at x, or -Inf outside the support.
func (g GEV) LogPDF(x float64) float64 {
	if g.Sigma <= 0 {
		return math.Inf(-1)
	}
	s := (x - g.Mu) / g.Sigma
	if g.Xi == 0 {
		return -math.Log(g.Sigma) - s - math.Exp(-s)
	}
	t := 1 + g.Xi*s
	if t <= 0 {
		return math.Inf(-1)
	}
	lt := math.Log(t)
	return -math.Log(g.Sigma) - (1+1/g.Xi)*lt - math.Exp(-lt/g.Xi)
}

// NLL returns the negative log likelihood of the sample under g.
func (g GEV) NLL(sample []float64) float64 {
	nll := 0.0
	for _, x := range sample {
		lp := g.LogPDF(x)
		if math.IsInf(lp, -1) {
			return math.Inf(1)
		}
		nll -= lp
	}
	return nll
}

// GEVFit is the result of a maximum-likelihood fit, including standard
// errors derived from the observed information matrix (inverse Hessian
// of the negative log likelihood at the optimum).
type GEVFit struct {
	Dist    GEV
	SE      [3]float64 // standard errors for (Mu, Sigma, Xi); zero if unavailable
	N       int        // sample size used
	NLL     float64    // negative log likelihood at the optimum
	ForMin  bool       // fitted on negated data to model minima
	HessOK  bool       // whether the information matrix was invertible
	Cov     [3][3]float64
	Confide float64 // confidence level used by interval helpers
}

// ErrSampleTooSmall indicates too few block extrema to fit a GEV.
var ErrSampleTooSmall = errors.New("stats: need at least 5 block extrema to fit a GEV")

// FitGEVMaxima fits a GEV to a sample of block maxima by maximum
// likelihood (Nelder-Mead on (mu, log sigma, xi)).
func FitGEVMaxima(sample []float64) (GEVFit, error) {
	if len(sample) < 5 {
		return GEVFit{}, ErrSampleTooSmall
	}
	mean := Mean(sample)
	sd := StdDev(sample)
	if sd == 0 {
		sd = math.Max(1e-9, math.Abs(mean)*1e-9+1e-12)
	}
	// Method-of-moments start for the Gumbel case.
	sigma0 := sd * math.Sqrt(6) / math.Pi
	mu0 := mean - 0.5772156649015329*sigma0
	obj := func(p []float64) float64 {
		g := GEV{Mu: p[0], Sigma: math.Exp(p[1]), Xi: p[2]}
		return g.NLL(sample)
	}
	best, bestV := []float64{mu0, math.Log(sigma0), 0.1}, math.Inf(1)
	// Multi-start over a few shape values for robustness; the NLL
	// surface can have a boundary ridge in xi.
	for _, xi0 := range []float64{-0.2, 0.0, 0.1, 0.4} {
		x, v := NelderMead(obj, []float64{mu0, math.Log(sigma0), xi0}, 0.1, 800)
		if v < bestV {
			best, bestV = x, v
		}
	}
	fit := GEVFit{
		Dist: GEV{Mu: best[0], Sigma: math.Exp(best[1]), Xi: best[2]},
		N:    len(sample),
		NLL:  bestV,
	}
	fit.computeSE(sample)
	return fit, nil
}

// FitGEVMinima fits a GEV model for block MINIMA using the standard
// negation trick: min(X) = -max(-X). Quantile helpers on the returned
// fit account for the sign flip.
func FitGEVMinima(sample []float64) (GEVFit, error) {
	neg := make([]float64, len(sample))
	for i, x := range sample {
		neg[i] = -x
	}
	fit, err := FitGEVMaxima(neg)
	if err != nil {
		return fit, err
	}
	fit.ForMin = true
	return fit, nil
}

// computeSE fills in the observed-information standard errors via a
// central-difference Hessian of the NLL in the natural parameters.
func (f *GEVFit) computeSE(sample []float64) {
	p := [3]float64{f.Dist.Mu, f.Dist.Sigma, f.Dist.Xi}
	nll := func(q [3]float64) float64 {
		if q[1] <= 0 {
			return math.Inf(1)
		}
		return GEV{Mu: q[0], Sigma: q[1], Xi: q[2]}.NLL(sample)
	}
	h := [3]float64{}
	for i := 0; i < 3; i++ {
		h[i] = 1e-4 * (math.Abs(p[i]) + 1e-3)
	}
	hess := make([][]float64, 3)
	for i := range hess {
		hess[i] = make([]float64, 3)
	}
	f0 := nll(p)
	if math.IsInf(f0, 1) {
		return
	}
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			var v float64
			if i == j {
				pp, pm := p, p
				pp[i] += h[i]
				pm[i] -= h[i]
				v = (nll(pp) - 2*f0 + nll(pm)) / (h[i] * h[i])
			} else {
				ppp, ppm, pmp, pmm := p, p, p, p
				ppp[i] += h[i]
				ppp[j] += h[j]
				ppm[i] += h[i]
				ppm[j] -= h[j]
				pmp[i] -= h[i]
				pmp[j] += h[j]
				pmm[i] -= h[i]
				pmm[j] -= h[j]
				v = (nll(ppp) - nll(ppm) - nll(pmp) + nll(pmm)) / (4 * h[i] * h[j])
			}
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return
			}
			hess[i][j] = v
			hess[j][i] = v
		}
	}
	inv, ok := InvertMatrix(hess)
	if !ok {
		return
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			f.Cov[i][j] = inv[i][j]
		}
	}
	for i := 0; i < 3; i++ {
		if inv[i][i] > 0 {
			f.SE[i] = math.Sqrt(inv[i][i])
		}
	}
	f.HessOK = true
}

// ExtremeEstimate estimates the population extreme (minimum if the fit
// is ForMin, maximum otherwise) as the GEV quantile at tail probability
// p (e.g. 0.01 for the 1st percentile, Section 3.2), with a
// delta-method confidence interval at the given level.
func (f GEVFit) ExtremeEstimate(p, confidence float64) Estimate {
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	// For maxima we look at the upper tail quantile 1-p; for minima the
	// negated fit's upper tail maps back to the lower tail.
	q := f.Dist.Quantile(1 - p)
	grad := f.quantileGradient(1 - p)
	variance := 0.0
	if f.HessOK {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				variance += grad[i] * f.Cov[i][j] * grad[j]
			}
		}
	}
	if variance < 0 || !f.HessOK {
		variance = math.Inf(1)
	}
	se := math.Sqrt(variance)
	z := NormalQuantile(1 - (1-confidence)/2)
	val := q
	if f.ForMin {
		val = -q
	}
	return Estimate{Value: val, Err: z * se, StdErr: se, DF: float64(f.N - 1), Conf: confidence}
}

// quantileGradient returns d quantile / d (mu, sigma, xi) at prob p.
func (f GEVFit) quantileGradient(p float64) [3]float64 {
	l := -math.Log(p)
	xi := f.Dist.Xi
	if math.Abs(xi) < 1e-8 {
		// Gumbel limit: q = mu - sigma log l.
		// d/dxi via numerical difference for stability.
		dxi := (GEV{f.Dist.Mu, f.Dist.Sigma, 1e-5}.Quantile(p) -
			GEV{f.Dist.Mu, f.Dist.Sigma, -1e-5}.Quantile(p)) / 2e-5
		return [3]float64{1, -math.Log(l), dxi}
	}
	lp := math.Pow(l, -xi)
	dmu := 1.0
	dsigma := (lp - 1) / xi
	dxi := -f.Dist.Sigma/(xi*xi)*(lp-1) + f.Dist.Sigma/xi*(-math.Log(l))*lp
	return [3]float64{dmu, dsigma, dxi}
}

// BlockExtrema reduces a raw sample to m block minima or maxima
// (Section 3.2's Block Minima/Maxima method). Values are consumed in
// order; the final partial block, if any, is included.
func BlockExtrema(sample []float64, blocks int, minima bool) []float64 {
	if blocks <= 0 || len(sample) == 0 {
		return nil
	}
	if blocks > len(sample) {
		blocks = len(sample)
	}
	size := (len(sample) + blocks - 1) / blocks
	var out []float64
	for start := 0; start < len(sample); start += size {
		end := start + size
		if end > len(sample) {
			end = len(sample)
		}
		ext := sample[start]
		for _, v := range sample[start+1 : end] {
			if minima && v < ext || !minima && v > ext {
				ext = v
			}
		}
		out = append(out, ext)
	}
	return out
}
