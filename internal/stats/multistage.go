package stats

import (
	"fmt"
	"math"
)

// Estimate is a point estimate with a symmetric confidence interval.
type Estimate struct {
	Value  float64 // point estimate (tau-hat, mean-hat, ...)
	Err    float64 // half-width of the confidence interval (epsilon)
	StdErr float64 // standard error sqrt(Var-hat)
	DF     float64 // degrees of freedom used for the t critical value
	Conf   float64 // confidence level, e.g. 0.95
}

// Lo returns the lower bound of the confidence interval.
func (e Estimate) Lo() float64 { return e.Value - e.Err }

// Hi returns the upper bound of the confidence interval.
func (e Estimate) Hi() float64 { return e.Value + e.Err }

// RelErr returns the relative half-width |Err/Value|; it returns +Inf
// when the point estimate is zero but the error bound is not.
func (e Estimate) RelErr() float64 {
	if e.Value == 0 {
		if e.Err == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(e.Err / e.Value)
}

func (e Estimate) String() string {
	return fmt.Sprintf("%.6g ± %.6g (%.0f%% conf)", e.Value, e.Err, e.Conf*100)
}

// ClusterSample holds what one executed map task reports for one
// intermediate key under two-stage sampling: the task processed a block
// ("cluster") with M total units, sampled m of them, and the sampled
// units produced the recorded running statistics for the key. Units
// that produced no value for the key count as implicit zeros, which is
// the paper's single assumption about the Map computation (Section 3.1).
type ClusterSample struct {
	M    int64       // units in the cluster (data items in the block)
	Sam  int64       // sampled units m_i (m_i <= M)
	Stat RunningStat // per-key count/sum/sumsq over the sampled units
}

// totalEstimate returns tau-hat_i = M_i * ybar_i, the estimated total of
// the key's values over the whole cluster.
func (c ClusterSample) totalEstimate() float64 {
	if c.Sam == 0 {
		return 0
	}
	return float64(c.M) * c.Stat.MeanOverN(c.Sam)
}

// withinVarTerm returns M_i (M_i - m_i) s_i^2 / m_i, the within-cluster
// contribution of this cluster to Var-hat(tau-hat) (Equation 3).
func (c ClusterSample) withinVarTerm() float64 {
	if c.Sam < 2 || c.Sam >= c.M {
		// Fully enumerated clusters contribute no within-cluster
		// sampling variance; single-unit samples carry no variance
		// information (conservatively treated as zero, matching
		// standard practice for two-stage estimators).
		if c.Sam >= c.M {
			return 0
		}
		return 0
	}
	s2 := c.Stat.VarianceOverN(c.Sam)
	return float64(c.M) * float64(c.M-c.Sam) * s2 / float64(c.Sam)
}

// TwoStage is a two-stage (cluster) sample: N clusters exist in the
// population, and Clusters holds the per-cluster reports of the n
// executed map tasks. In MapReduce terms, N is the total number of map
// tasks of the job and Clusters has one entry per completed task.
type TwoStage struct {
	N        int64 // number of clusters in the population (total map tasks)
	Clusters []ClusterSample
}

// n returns the number of sampled clusters.
func (ts TwoStage) n() int { return len(ts.Clusters) }

// varTotal evaluates Equation 3 of the paper:
//
//	Var(tau-hat) = N(N-n) s_u^2 / n + (N/n) sum_i M_i (M_i - m_i) s_i^2 / m_i
//
// where s_u^2 is the variance across the sampled clusters' estimated
// totals and s_i^2 the within-cluster variance (implicit zeros included).
func (ts TwoStage) varTotal() float64 {
	n := ts.n()
	if n == 0 {
		return math.Inf(1)
	}
	N := float64(ts.N)
	fn := float64(n)
	totals := make([]float64, n)
	within := 0.0
	for i, c := range ts.Clusters {
		totals[i] = c.totalEstimate()
		within += c.withinVarTerm()
	}
	su2 := Variance(totals)
	between := N * (N - fn) * su2 / fn
	if between < 0 {
		between = 0
	}
	return between + N/fn*within
}

// Sum estimates the population total of the key's values with a
// confidence interval at the given level (e.g. 0.95). This follows
// Equations 1-3 of the paper. With n < 2 sampled clusters no variance
// can be estimated and the error bound is +Inf unless the sample is in
// fact exhaustive (n == N and every cluster fully sampled), in which
// case the estimate is exact.
func (ts TwoStage) Sum(confidence float64) Estimate {
	n := ts.n()
	est := Estimate{Conf: confidence, DF: float64(n - 1)}
	if n == 0 {
		est.Value = 0
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	sum := 0.0
	for _, c := range ts.Clusters {
		sum += c.totalEstimate()
	}
	est.Value = float64(ts.N) / float64(n) * sum
	if ts.exhaustive() {
		return est // exact: zero-width interval
	}
	if n < 2 {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	v := ts.varTotal()
	est.StdErr = math.Sqrt(v)
	est.Err = TwoSidedT(confidence, float64(n-1)) * est.StdErr
	return est
}

// Count is an alias for Sum for indicator-valued computations (the
// count of units matching a predicate is the sum of 0/1 values).
func (ts TwoStage) Count(confidence float64) Estimate { return ts.Sum(confidence) }

// exhaustive reports whether the sample actually covers the entire
// population, in which case estimates are exact.
func (ts TwoStage) exhaustive() bool {
	if int64(ts.n()) != ts.N {
		return false
	}
	for _, c := range ts.Clusters {
		if c.Sam < c.M {
			return false
		}
	}
	return true
}

// PopulationSize estimates the total number of units T in the
// population as (N/n) * sum M_i; exact when every cluster was sampled.
func (ts TwoStage) PopulationSize() float64 {
	n := ts.n()
	if n == 0 {
		return 0
	}
	t := int64(0)
	for _, c := range ts.Clusters {
		t += c.M
	}
	return float64(ts.N) / float64(n) * float64(t)
}

// Mean estimates the per-unit mean of the key's values (the population
// total divided by the number of units) using ratio estimation: the
// denominator totals M_i are known exactly for sampled clusters, so the
// within-cluster residual variance reduces to the value variance.
func (ts TwoStage) Mean(confidence float64) Estimate {
	n := ts.n()
	est := Estimate{Conf: confidence, DF: float64(n - 1)}
	if n == 0 {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	var sumY, sumX float64
	for _, c := range ts.Clusters {
		sumY += c.totalEstimate()
		sumX += float64(c.M)
	}
	if sumX == 0 {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	b := sumY / sumX
	est.Value = b
	if ts.exhaustive() {
		return est
	}
	if n < 2 {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	// Linearized variance: residuals d_i = yhat_i - b * M_i at the
	// cluster level, plus within-cluster value variance (x == 1 per
	// unit so residual variance within a cluster equals s_i^2).
	N := float64(ts.N)
	fn := float64(n)
	resid := make([]float64, n)
	within := 0.0
	for i, c := range ts.Clusters {
		resid[i] = c.totalEstimate() - b*float64(c.M)
		within += c.withinVarTerm()
	}
	sd2 := Variance(resid)
	vTot := N*(N-fn)*sd2/fn + N/fn*within
	if vTot < 0 {
		vTot = 0
	}
	tx := N / fn * sumX // estimated population size
	est.StdErr = math.Sqrt(vTot) / tx
	est.Err = TwoSidedT(confidence, float64(n-1)) * est.StdErr
	return est
}

// BivariateCluster extends ClusterSample with a second per-unit
// variable so ratios such as sum(y)/sum(x) (e.g. average request size =
// total bytes / total requests) can be estimated. SumXY is the sum of
// per-unit products, needed for the covariance of the linearization.
type BivariateCluster struct {
	M     int64
	Sam   int64
	Y     RunningStat
	X     RunningStat
	SumXY float64
}

// TwoStageRatio estimates R = total(y)/total(x) from a two-stage sample
// with N population clusters.
func TwoStageRatio(N int64, clusters []BivariateCluster, confidence float64) Estimate {
	n := len(clusters)
	est := Estimate{Conf: confidence, DF: float64(n - 1)}
	if n == 0 {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	var sumY, sumX float64
	yhat := make([]float64, n)
	xhat := make([]float64, n)
	for i, c := range clusters {
		if c.Sam > 0 {
			yhat[i] = float64(c.M) * c.Y.Sum / float64(c.Sam)
			xhat[i] = float64(c.M) * c.X.Sum / float64(c.Sam)
		}
		sumY += yhat[i]
		sumX += xhat[i]
	}
	if sumX == 0 {
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	b := sumY / sumX
	est.Value = b
	if n < 2 {
		exhaustive := int64(n) == N
		for _, c := range clusters {
			if c.Sam < c.M {
				exhaustive = false
			}
		}
		if exhaustive {
			return est
		}
		est.Err = math.Inf(1)
		est.StdErr = math.Inf(1)
		return est
	}
	Nf := float64(N)
	fn := float64(n)
	resid := make([]float64, n)
	within := 0.0
	for i, c := range clusters {
		resid[i] = yhat[i] - b*xhat[i]
		if c.Sam >= 2 && c.Sam < c.M {
			m := float64(c.Sam)
			// Per-unit residual r_j = y_j - b x_j over the m sampled
			// units (implicit zeros included): its variance expands to
			// var(y) + b^2 var(x) - 2 b cov(x, y).
			meanY := c.Y.Sum / m
			meanX := c.X.Sum / m
			vy := c.Y.VarianceOverN(c.Sam)
			vx := c.X.VarianceOverN(c.Sam)
			cxy := (c.SumXY - m*meanX*meanY) / (m - 1)
			s2 := vy + b*b*vx - 2*b*cxy
			if s2 < 0 {
				s2 = 0
			}
			within += float64(c.M) * float64(c.M-c.Sam) * s2 / m
		}
	}
	sd2 := Variance(resid)
	vTot := Nf*(Nf-fn)*sd2/fn + Nf/fn*within
	if vTot < 0 {
		vTot = 0
	}
	tx := Nf / fn * sumX
	est.StdErr = math.Sqrt(vTot) / tx
	est.Err = TwoSidedT(confidence, float64(n-1)) * est.StdErr
	return est
}

// ThreeStageCluster is a cluster in a three-stage design: within each
// sampled cluster, G_i groups of intermediate pairs exist (e.g.
// paragraphs inside pages), g_i of which are observed, and the recorded
// statistics range over the observed intermediate pairs rather than
// over input units. The programmer opts in explicitly (Section 3.1,
// "Three-stage sampling").
type ThreeStageCluster struct {
	M    int64       // secondary units (input items) in the cluster
	Sam  int64       // sampled secondary units
	G    int64       // intermediate pairs produced per sampled unit (total observed)
	Stat RunningStat // stats over observed intermediate pairs
}

// ThreeStageMean estimates the mean over intermediate pairs (rather
// than over input units). The per-unit pair counts act as the size
// variable of a ratio estimator: y = value sums, x = pair counts.
func ThreeStageMean(N int64, clusters []ThreeStageCluster, confidence float64) Estimate {
	biv := make([]BivariateCluster, len(clusters))
	for i, c := range clusters {
		biv[i] = BivariateCluster{
			M:   c.M,
			Sam: c.Sam,
			Y:   c.Stat,
			X:   RunningStat{Count: c.G, Sum: float64(c.G), SumSq: float64(c.G)},
			// Without per-unit pair bookkeeping we conservatively use
			// the value sum as the cross moment, which upper-bounds
			// the residual variance for nonnegative values.
			SumXY: c.Stat.Sum,
		}
	}
	return TwoStageRatio(N, biv, confidence)
}
