package stats

import (
	"testing"
)

func BenchmarkTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TQuantile(0.975, float64(1+i%100))
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NormalQuantile(0.001 + float64(i%997)/1000)
	}
}

func BenchmarkRegIncBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RegIncBeta(5, 0.5, float64(i%1000)/1000)
	}
}

func BenchmarkTwoStageSum(b *testing.B) {
	ts := TwoStage{N: 200}
	r := NewRand(1)
	for i := 0; i < 100; i++ {
		cs := ClusterSample{M: 1000, Sam: 100}
		for j := 0; j < 100; j++ {
			cs.Stat.Add(r.Float64() * 10)
		}
		ts.Clusters = append(ts.Clusters, cs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ts.Sum(0.95)
	}
}

func BenchmarkGEVFit(b *testing.B) {
	sample := drawGEV(GEV{Mu: 10, Sigma: 2, Xi: 0.1}, 100, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitGEVMaxima(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNelderMead(b *testing.B) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		c := x[1] - x[0]*x[0]
		return a*a + 100*c*c
	}
	for i := 0; i < b.N; i++ {
		_, _ = NelderMead(f, []float64{-1.2, 1}, 0.5, 500)
	}
}

func BenchmarkRunningStatAdd(b *testing.B) {
	var rs RunningStat
	for i := 0; i < b.N; i++ {
		rs.Add(float64(i % 100))
	}
}

func BenchmarkZipf(b *testing.B) {
	z := NewZipf(NewRand(1), 1.2, 100000)
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
