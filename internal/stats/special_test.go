package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.5, 0.5},          // uniform CDF
		{1, 1, 0.25, 0.25},        // uniform CDF
		{2, 1, 0.5, 0.25},         // x^2
		{1, 2, 0.5, 0.75},         // 1-(1-x)^2
		{2, 2, 0.5, 0.5},          // symmetric
		{5, 5, 0.5, 0.5},          // symmetric
		{0.5, 0.5, 0.5, 0.5},      // arcsine
		{0.5, 0.5, 0.25, 1.0 / 3}, // arcsine at 1/4
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if !AlmostEqual(got, c.want, 1e-9) {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); !AlmostEqual(got, 1, 1e-12) {
		t.Errorf("I_1 = %v, want 1", got)
	}
	if got := RegIncBeta(-1, 3, 0.5); !math.IsNaN(got) {
		t.Errorf("negative a should be NaN, got %v", got)
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	err := quick.Check(func(aSeed, bSeed, x1s, x2s uint32) bool {
		a := 0.5 + float64(aSeed%100)/10
		b := 0.5 + float64(bSeed%100)/10
		x1 := float64(x1s%1000) / 1000
		x2 := float64(x2s%1000) / 1000
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegIncBeta(a, b, x1) <= RegIncBeta(a, b, x2)+1e-12
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.99, 2.3263478740408408},
		{0.995, 2.5758293035489004},
		{0.025, -1.959963984540054},
		{0.0001, -3.719016485455709},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if !AlmostEqual(got, c.want, 1e-8) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	err := quick.Check(func(seed uint32) bool {
		p := (float64(seed%99998) + 1) / 100000
		return AlmostEqual(NormalCDF(NormalQuantile(p)), p, 1e-9)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 1, 12.7062047364},
		{0.975, 2, 4.3026527297},
		{0.975, 5, 2.5705818366},
		{0.975, 10, 2.2281388520},
		{0.975, 30, 2.0422724563},
		{0.95, 10, 1.8124611228},
		{0.99, 5, 3.3649299989},
		{0.995, 20, 2.8453397098},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if !AlmostEqual(got, c.want, 1e-6) {
			t.Errorf("TQuantile(%v, %v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []float64{1, 3, 7, 29} {
		for _, p := range []float64{0.6, 0.9, 0.99} {
			if got, want := TQuantile(1-p, df), -TQuantile(p, df); !AlmostEqual(got, want, 1e-9) {
				t.Errorf("symmetry broken: TQuantile(%v,%v)=%v want %v", 1-p, df, got, want)
			}
		}
	}
	if TQuantile(0.5, 7) != 0 {
		t.Error("median of t should be 0")
	}
}

func TestTCDFInvertsQuantile(t *testing.T) {
	err := quick.Check(func(pSeed, dfSeed uint32) bool {
		p := (float64(pSeed%9998) + 1) / 10000
		df := float64(dfSeed%60) + 1
		return AlmostEqual(TCDF(TQuantile(p, df), df), p, 1e-8)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	if got, want := TQuantile(0.975, 1e6), NormalQuantile(0.975); !AlmostEqual(got, want, 1e-4) {
		t.Errorf("large-df t quantile %v should approach normal %v", got, want)
	}
}

func TestTwoSidedT(t *testing.T) {
	if got, want := TwoSidedT(0.95, 10), TQuantile(0.975, 10); !AlmostEqual(got, want, 1e-12) {
		t.Errorf("TwoSidedT(0.95,10) = %v, want %v", got, want)
	}
	if !math.IsNaN(TwoSidedT(1.5, 10)) {
		t.Error("confidence > 1 should give NaN")
	}
}

func TestTCDFEdges(t *testing.T) {
	if got := TCDF(math.Inf(1), 5); !AlmostEqual(got, 1, 1e-12) {
		t.Errorf("TCDF(+inf) = %v", got)
	}
	if got := TCDF(math.Inf(-1), 5); got != 0 {
		t.Errorf("TCDF(-inf) = %v", got)
	}
	if !math.IsNaN(TCDF(0, -1)) {
		t.Error("negative df should be NaN")
	}
}
