package stats

import "math"

// AlmostEqual reports whether a and b agree to within tol, taken as an
// absolute tolerance for small magnitudes and a relative one for large
// (the difference may be up to tol times the larger magnitude). It is
// the comparison the approxlint `nofloateq` analyzer points exact
// float ==/!= at: estimator outputs travel through enough
// transcendental math that bit-exact equality is never the right
// question.
func AlmostEqual(a, b, tol float64) bool {
	//lint:ignore nofloateq identical values (including infinities) are equal by definition
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) {
		return false
	}
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
