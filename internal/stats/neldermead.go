package stats

import (
	"math"
	"sort"
)

// NelderMead minimizes f starting from x0 using the downhill simplex
// method with standard coefficients (reflection 1, expansion 2,
// contraction 0.5, shrink 0.5). step sets the initial simplex size per
// coordinate; maxIter bounds the number of iterations. It returns the
// best point found and its value. The implementation is deterministic.
func NelderMead(f func([]float64) float64, x0 []float64, step float64, maxIter int) ([]float64, float64) {
	dim := len(x0)
	if dim == 0 {
		return nil, f(nil)
	}
	type vertex struct {
		x []float64
		v float64
	}
	eval := func(x []float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	simplex := make([]vertex, dim+1)
	for i := range simplex {
		x := make([]float64, dim)
		copy(x, x0)
		if i > 0 {
			d := step
			if x[i-1] != 0 {
				d = step * math.Abs(x[i-1])
			}
			if d == 0 {
				d = step
			}
			x[i-1] += d
		}
		simplex[i] = vertex{x: x, v: eval(x)}
	}
	centroid := make([]float64, dim)
	trial := make([]float64, dim)
	trial2 := make([]float64, dim)
	for iter := 0; iter < maxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
		best, worst := simplex[0], simplex[dim]
		if math.Abs(worst.v-best.v) < 1e-12*(1+math.Abs(best.v)) {
			break
		}
		for j := 0; j < dim; j++ {
			c := 0.0
			for i := 0; i < dim; i++ { // exclude worst
				c += simplex[i].x[j]
			}
			centroid[j] = c / float64(dim)
		}
		// Reflection.
		for j := 0; j < dim; j++ {
			trial[j] = centroid[j] + (centroid[j] - worst.x[j])
		}
		vr := eval(trial)
		switch {
		case vr < best.v:
			// Expansion.
			for j := 0; j < dim; j++ {
				trial2[j] = centroid[j] + 2*(centroid[j]-worst.x[j])
			}
			ve := eval(trial2)
			if ve < vr {
				copy(simplex[dim].x, trial2)
				simplex[dim].v = ve
			} else {
				copy(simplex[dim].x, trial)
				simplex[dim].v = vr
			}
		case vr < simplex[dim-1].v:
			copy(simplex[dim].x, trial)
			simplex[dim].v = vr
		default:
			// Contraction (toward the better of worst/reflected).
			if vr < worst.v {
				for j := 0; j < dim; j++ {
					trial2[j] = centroid[j] + 0.5*(trial[j]-centroid[j])
				}
			} else {
				for j := 0; j < dim; j++ {
					trial2[j] = centroid[j] + 0.5*(worst.x[j]-centroid[j])
				}
			}
			vc := eval(trial2)
			if vc < math.Min(vr, worst.v) {
				copy(simplex[dim].x, trial2)
				simplex[dim].v = vc
			} else {
				// Shrink toward best.
				for i := 1; i <= dim; i++ {
					for j := 0; j < dim; j++ {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].v = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
	out := make([]float64, dim)
	copy(out, simplex[0].x)
	return out, simplex[0].v
}

// SolveLinear solves the dense system A x = b by Gaussian elimination
// with partial pivoting. A is given in row-major order and is not
// modified. It returns false if the matrix is (numerically) singular.
func SolveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}

// InvertMatrix inverts the dense n x n matrix a, returning false if the
// matrix is numerically singular.
func InvertMatrix(a [][]float64) ([][]float64, bool) {
	n := len(a)
	inv := make([][]float64, n)
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		col, ok := SolveLinear(a, e)
		if !ok {
			return nil, false
		}
		for i := 0; i < n; i++ {
			if inv[i] == nil {
				inv[i] = make([]float64, n)
			}
			inv[i][j] = col[i]
		}
	}
	return inv, true
}
