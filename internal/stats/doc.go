// Package stats implements the statistical machinery that ApproxHadoop
// relies on to turn approximate MapReduce executions into estimates with
// rigorous error bounds.
//
// It provides:
//
//   - Student-t and standard-normal quantiles (via the regularized
//     incomplete beta function), used for confidence intervals,
//   - multi-stage (two- and three-stage) sampling estimators for the
//     aggregation reducers sum, count, average and ratio (Lohr,
//     "Sampling: Design and Analysis"), including the variance
//     decomposition of the paper's Equation 3,
//   - the Generalized Extreme Value (GEV) distribution with maximum
//     likelihood fitting (Nelder-Mead), Block Minima/Maxima transforms
//     and delta-method confidence intervals, used for min/max reducers
//     (Coles, "An Introduction to Statistical Modeling of Extreme
//     Values"),
//   - small numerical helpers: descriptive statistics, a Nelder-Mead
//     optimizer, dense linear solves for the observed information
//     matrix, and seeded random-variate generators for workloads.
//
// Everything is pure Go with no dependencies outside the standard
// library, and all randomized routines accept explicit *rand.Rand
// sources so simulations stay deterministic.
package stats
