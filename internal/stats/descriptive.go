package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1).
// It returns 0 for slices with fewer than two elements.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It panics on an empty
// slice, which would indicate a logic error in the caller.
func MinMax(xs []float64) (minV, maxV float64) {
	if len(xs) == 0 {
		//lint:ignore nopanic documented invariant: the doc comment requires a non-empty slice; an empty one is a caller logic error
		panic("stats: MinMax of empty slice")
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// RunningStat accumulates count, sum and sum of squares incrementally.
// It is the per-(task, key) record that approximate mappers forward to
// reducers: together with the block unit counts it is sufficient to
// evaluate the multi-stage sampling variance with implicit zero values.
type RunningStat struct {
	Count int64
	Sum   float64
	SumSq float64
}

// Add records one observation.
func (r *RunningStat) Add(v float64) {
	r.Count++
	r.Sum += v
	r.SumSq += v * v
}

// Merge folds another accumulator into r.
func (r *RunningStat) Merge(o RunningStat) {
	r.Count += o.Count
	r.Sum += o.Sum
	r.SumSq += o.SumSq
}

// MeanOverN returns the mean assuming the observations are padded with
// implicit zeros up to n units.
func (r RunningStat) MeanOverN(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return r.Sum / float64(n)
}

// VarianceOverN returns the unbiased sample variance assuming implicit
// zeros pad the sample to n units: the Count recorded values plus
// (n-Count) zeros.
func (r RunningStat) VarianceOverN(n int64) float64 {
	if n < 2 {
		return 0
	}
	mean := r.Sum / float64(n)
	// Sum of squared deviations = SumSq - n*mean^2 (zeros contribute
	// mean^2 each, already accounted for by the n*mean^2 term).
	ss := r.SumSq - float64(n)*mean*mean
	if ss < 0 {
		ss = 0 // guard against floating-point cancellation
	}
	return ss / float64(n-1)
}
