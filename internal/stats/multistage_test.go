package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makePopulation builds a synthetic clustered population and returns the
// per-cluster unit values plus the true total.
func makePopulation(r *rand.Rand, nClusters, unitsPer int) ([][]float64, float64) {
	pop := make([][]float64, nClusters)
	total := 0.0
	for i := range pop {
		base := r.Float64() * 10 // cluster-level locality
		units := make([]float64, unitsPer)
		for j := range units {
			v := base + r.Float64()*5
			if r.Float64() < 0.3 {
				v = 0 // some units produce nothing for this key
			}
			units[j] = v
			total += v
		}
		pop[i] = units
	}
	return pop, total
}

// drawTwoStage samples n clusters and m units per cluster.
func drawTwoStage(r *rand.Rand, pop [][]float64, n, m int) TwoStage {
	ts := TwoStage{N: int64(len(pop))}
	for _, ci := range SampleWithoutReplacement(r, len(pop), n) {
		cluster := pop[ci]
		cs := ClusterSample{M: int64(len(cluster)), Sam: int64(m)}
		for _, ui := range SampleWithoutReplacement(r, len(cluster), m) {
			if cluster[ui] != 0 {
				cs.Stat.Add(cluster[ui])
			}
		}
		ts.Clusters = append(ts.Clusters, cs)
	}
	return ts
}

func TestTwoStageExhaustiveIsExact(t *testing.T) {
	r := NewRand(1)
	pop, total := makePopulation(r, 8, 50)
	ts := TwoStage{N: 8}
	for _, cluster := range pop {
		cs := ClusterSample{M: int64(len(cluster)), Sam: int64(len(cluster))}
		for _, v := range cluster {
			if v != 0 {
				cs.Stat.Add(v)
			}
		}
		ts.Clusters = append(ts.Clusters, cs)
	}
	est := ts.Sum(0.95)
	if !AlmostEqual(est.Value, total, 1e-9) {
		t.Errorf("exhaustive sum %v != true %v", est.Value, total)
	}
	if est.Err != 0 {
		t.Errorf("exhaustive sample should have zero error bound, got %v", est.Err)
	}
}

func TestTwoStageCoverage(t *testing.T) {
	// The 95% interval should contain the true total in roughly 95% of
	// repeated samples. With 200 trials, seeing fewer than 85% hits
	// would indicate broken variance math.
	r := NewRand(42)
	pop, total := makePopulation(r, 40, 100)
	hits, trials := 0, 200
	for i := 0; i < trials; i++ {
		ts := drawTwoStage(r, pop, 12, 30)
		est := ts.Sum(0.95)
		if est.Lo() <= total && total <= est.Hi() {
			hits++
		}
	}
	if frac := float64(hits) / float64(trials); frac < 0.85 {
		t.Errorf("coverage %.2f too low (want >= 0.85)", frac)
	}
}

func TestTwoStageUnbiasedish(t *testing.T) {
	r := NewRand(7)
	pop, total := makePopulation(r, 30, 80)
	sum := 0.0
	trials := 300
	for i := 0; i < trials; i++ {
		ts := drawTwoStage(r, pop, 10, 20)
		sum += ts.Sum(0.95).Value
	}
	avg := sum / float64(trials)
	if math.Abs(avg-total)/total > 0.05 {
		t.Errorf("estimator mean %v deviates from true total %v by > 5%%", avg, total)
	}
}

func TestTwoStageMoreSamplingTightensBounds(t *testing.T) {
	r := NewRand(3)
	pop, _ := makePopulation(r, 40, 100)
	loose := drawTwoStage(NewRand(10), pop, 8, 10).Sum(0.95)
	tight := drawTwoStage(NewRand(10), pop, 30, 80).Sum(0.95)
	if tight.Err >= loose.Err {
		t.Errorf("larger sample should tighten bounds: tight %v vs loose %v", tight.Err, loose.Err)
	}
}

func TestTwoStageDegenerate(t *testing.T) {
	ts := TwoStage{N: 10}
	est := ts.Sum(0.95)
	if !math.IsInf(est.Err, 1) {
		t.Error("no clusters should give infinite error")
	}
	ts.Clusters = []ClusterSample{{M: 100, Sam: 10, Stat: RunningStat{Count: 5, Sum: 50, SumSq: 600}}}
	est = ts.Sum(0.95)
	// value = N/n * M * mean = 10 * 100 * 5 = 5000
	if !AlmostEqual(est.Value, 5000, 1e-9) {
		t.Errorf("single cluster estimate %v, want 5000", est.Value)
	}
	if !math.IsInf(est.Err, 1) {
		t.Error("single cluster should give infinite error bound")
	}
}

func TestTwoStageMean(t *testing.T) {
	r := NewRand(11)
	pop, total := makePopulation(r, 30, 60)
	trueMean := total / float64(30*60)
	hits, trials := 0, 150
	for i := 0; i < trials; i++ {
		ts := drawTwoStage(r, pop, 12, 25)
		est := ts.Mean(0.95)
		if est.Lo() <= trueMean && trueMean <= est.Hi() {
			hits++
		}
	}
	if frac := float64(hits) / float64(trials); frac < 0.85 {
		t.Errorf("mean coverage %.2f too low", frac)
	}
}

func TestTwoStageMeanExhaustive(t *testing.T) {
	ts := TwoStage{N: 2}
	for i := 0; i < 2; i++ {
		cs := ClusterSample{M: 3, Sam: 3}
		cs.Stat.Add(1)
		cs.Stat.Add(2)
		cs.Stat.Add(3)
		ts.Clusters = append(ts.Clusters, cs)
	}
	est := ts.Mean(0.95)
	if !AlmostEqual(est.Value, 2, 1e-12) || est.Err != 0 {
		t.Errorf("exhaustive mean = %v ± %v, want 2 ± 0", est.Value, est.Err)
	}
}

func TestPopulationSize(t *testing.T) {
	ts := TwoStage{N: 10, Clusters: []ClusterSample{{M: 100, Sam: 10}, {M: 200, Sam: 10}}}
	if got := ts.PopulationSize(); !AlmostEqual(got, 1500, 1e-9) {
		t.Errorf("PopulationSize = %v, want 1500", got)
	}
}

func TestTwoStageRatioRecoverAverage(t *testing.T) {
	// Average request size: y = bytes, x = 1 per request.
	r := NewRand(5)
	N := 20
	var clusters []BivariateCluster
	trueY, trueX := 0.0, 0.0
	for i := 0; i < N; i++ {
		c := BivariateCluster{M: 50, Sam: 50}
		for j := 0; j < 50; j++ {
			y := 100 + r.Float64()*50
			c.Y.Add(y)
			c.X.Add(1)
			c.SumXY += y
			trueY += y
			trueX++
		}
		clusters = append(clusters, c)
	}
	est := TwoStageRatio(int64(N), clusters, 0.95)
	if !AlmostEqual(est.Value, trueY/trueX, 1e-9) {
		t.Errorf("ratio %v, want %v", est.Value, trueY/trueX)
	}
}

func TestTwoStageRatioPartialSampleCoverage(t *testing.T) {
	r := NewRand(17)
	N := 40
	type unit struct{ y, x float64 }
	pop := make([][]unit, N)
	var ty, tx float64
	for i := range pop {
		pop[i] = make([]unit, 60)
		base := 50 + r.Float64()*20
		for j := range pop[i] {
			y := base + r.Float64()*30
			pop[i][j] = unit{y: y, x: 1}
			ty += y
			tx++
		}
	}
	trueR := ty / tx
	hits, trials := 0, 120
	for trial := 0; trial < trials; trial++ {
		var clusters []BivariateCluster
		for _, ci := range SampleWithoutReplacement(r, N, 12) {
			c := BivariateCluster{M: 60, Sam: 20}
			for _, ui := range SampleWithoutReplacement(r, 60, 20) {
				u := pop[ci][ui]
				c.Y.Add(u.y)
				c.X.Add(u.x)
				c.SumXY += u.x * u.y
			}
			clusters = append(clusters, c)
		}
		est := TwoStageRatio(int64(N), clusters, 0.95)
		if est.Lo() <= trueR && trueR <= est.Hi() {
			hits++
		}
	}
	if frac := float64(hits) / float64(trials); frac < 0.85 {
		t.Errorf("ratio coverage %.2f too low", frac)
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{Value: 100, Err: 5, Conf: 0.95}
	if !AlmostEqual(e.Lo(), 95, 1e-12) || !AlmostEqual(e.Hi(), 105, 1e-12) {
		t.Error("Lo/Hi wrong")
	}
	if !AlmostEqual(e.RelErr(), 0.05, 1e-12) {
		t.Errorf("RelErr = %v", e.RelErr())
	}
	zero := Estimate{Value: 0, Err: 1}
	if !math.IsInf(zero.RelErr(), 1) {
		t.Error("zero value with error should have infinite RelErr")
	}
	exact := Estimate{}
	if exact.RelErr() != 0 {
		t.Error("zero/zero RelErr should be 0")
	}
	if e.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestEstimatePropertyIntervalContainsValue(t *testing.T) {
	err := quick.Check(func(v, e float64) bool {
		if math.IsNaN(v) || math.IsNaN(e) || math.IsInf(v, 0) || math.IsInf(e, 0) {
			return true
		}
		est := Estimate{Value: v, Err: math.Abs(e)}
		return est.Lo() <= est.Value && est.Value <= est.Hi()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestThreeStageMean(t *testing.T) {
	// Each unit produces 4 pairs with value ~ 2; mean over pairs ~ 2.
	var clusters []ThreeStageCluster
	for i := 0; i < 10; i++ {
		c := ThreeStageCluster{M: 20, Sam: 20, G: 80}
		for j := 0; j < 80; j++ {
			c.Stat.Add(2)
		}
		clusters = append(clusters, c)
	}
	est := ThreeStageMean(10, clusters, 0.95)
	if !AlmostEqual(est.Value, 2, 1e-9) {
		t.Errorf("three-stage mean %v, want 2", est.Value)
	}
}
