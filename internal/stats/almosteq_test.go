package stats

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1.1, 1e-3, false},
		{0, 1e-13, 1e-12, true},
		{0, 1e-3, 1e-12, false},
		{1e12, 1e12 * (1 + 1e-13), 1e-12, true}, // relative, not absolute
		{1e12, 1.1e12, 1e-3, false},
		{math.Inf(1), math.Inf(1), 1e-12, true},
		{math.Inf(1), math.Inf(-1), 1e-12, false},
		{math.Inf(1), 1, 1e-12, false},
		{-5, 5, 1e-12, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN should never compare almost-equal")
	}
}
