package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !AlmostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !AlmostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !AlmostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single element should be 0")
	}
}

func TestMinMaxAndSum(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if !AlmostEqual(lo, -1, 1e-12) || !AlmostEqual(hi, 7, 1e-12) {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if !AlmostEqual(Sum([]float64{1, 2, 3}), 6, 1e-12) {
		t.Error("Sum wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) should panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); !AlmostEqual(got, 3, 1e-12) {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 0); !AlmostEqual(got, 1, 1e-12) {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); !AlmostEqual(got, 5, 1e-12) {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 25); !AlmostEqual(got, 2, 1e-12) {
		t.Errorf("P25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestRunningStatMatchesDirect(t *testing.T) {
	err := quick.Check(func(vals []float64, extraZeros uint8) bool {
		var rs RunningStat
		sample := make([]float64, 0, len(vals)+int(extraZeros))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			rs.Add(v)
			sample = append(sample, v)
		}
		for i := 0; i < int(extraZeros); i++ {
			sample = append(sample, 0)
		}
		n := int64(len(sample))
		if n < 2 {
			return true
		}
		wantMean := Mean(sample)
		wantVar := Variance(sample)
		return AlmostEqual(rs.MeanOverN(n), wantMean, 1e-9) &&
			AlmostEqual(rs.VarianceOverN(n), wantVar, 1e-6)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRunningStatMerge(t *testing.T) {
	var a, b, all RunningStat
	for i := 0; i < 10; i++ {
		v := float64(i * i)
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a != all {
		t.Errorf("merged %+v != direct %+v", a, all)
	}
}

func TestVarianceOverNGuards(t *testing.T) {
	var rs RunningStat
	rs.Add(5)
	if rs.VarianceOverN(1) != 0 {
		t.Error("n<2 variance should be 0")
	}
	if rs.MeanOverN(0) != 0 {
		t.Error("n=0 mean should be 0")
	}
}
