package approxhadoop_test

import (
	"math"
	"strings"
	"testing"

	approxhadoop "approxhadoop"
	"approxhadoop/internal/stats"
)

func wordCountJob(sys *approxhadoop.System, input *approxhadoop.File, ctl approxhadoop.Controller) *approxhadoop.Job {
	return &approxhadoop.Job{
		Name:   "ApproxWordCount",
		Input:  input,
		Format: approxhadoop.ApproxTextInput{},
		NewMapper: func() approxhadoop.Mapper {
			return approxhadoop.MapperFunc(func(rec approxhadoop.Record, emit approxhadoop.Emitter) {
				for _, w := range strings.Fields(rec.Value) {
					emit.Emit(w, 1)
				}
			})
		},
		NewReduce:  approxhadoop.MultiStageSumReduce,
		Combine:    true,
		Controller: ctl,
		Seed:       7,
	}
}

func corpus() []byte {
	var sb strings.Builder
	words := []string{"lorem", "ipsum", "nisi", "sit", "ut", "laboris"}
	for i := 0; i < 3000; i++ {
		sb.WriteString(words[i%len(words)])
		sb.WriteByte(' ')
		sb.WriteString(words[(i*7)%len(words)])
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

func TestPublicAPIWordCount(t *testing.T) {
	sys := approxhadoop.NewSystem(approxhadoop.DefaultCluster())
	input := approxhadoop.SplitText("pages.txt", corpus(), 2048)
	if err := sys.Store(input); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.File("pages.txt"); err != nil {
		t.Fatal(err)
	}

	precise, err := sys.Run(wordCountJob(sys, input, nil))
	if err != nil {
		t.Fatal(err)
	}
	lorem, ok := precise.Output("lorem")
	if !ok || !stats.AlmostEqual(lorem.Est.Value, 1000, 1e-9) {
		t.Fatalf("precise lorem = %+v ok=%v (want 1000)", lorem, ok)
	}

	apx, err := sys.Run(wordCountJob(sys, input, approxhadoop.Ratios(0.25, 0.25)))
	if err != nil {
		t.Fatal(err)
	}
	al, ok := apx.Output("lorem")
	if !ok {
		t.Fatal("approx missing lorem")
	}
	if al.Est.Err <= 0 {
		t.Errorf("approximate run should carry a bound: %+v", al.Est)
	}
	if math.Abs(al.Est.Value-1000)/1000 > 0.4 {
		t.Errorf("approx lorem = %v too far from 1000", al.Est.Value)
	}
	if apx.Runtime <= 0 || apx.EnergyWh <= 0 {
		t.Error("runtime/energy should be positive")
	}
}

func TestPublicAPITargetError(t *testing.T) {
	sys := approxhadoop.NewSystem(approxhadoop.DefaultCluster())
	input := approxhadoop.SplitText("pages.txt", corpus(), 512)
	res, err := sys.Run(wordCountJob(sys, input, approxhadoop.TargetError(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	worstErr, worstRel := 0.0, 0.0
	for _, o := range res.Outputs {
		if o.Est.Err > worstErr {
			worstErr, worstRel = o.Est.Err, o.Est.RelErr()
		}
	}
	if worstRel > 0.05 {
		t.Errorf("target-error run bound %.4f exceeds 5%%", worstRel)
	}
}

func TestPublicAPIExtremeController(t *testing.T) {
	if approxhadoop.TargetErrorExtreme(0.1).Name() == "" {
		t.Error("controller name empty")
	}
	if approxhadoop.TargetErrorPilot(0.01, 0.01, 4).Name() == "" {
		t.Error("pilot controller name empty")
	}
}

func TestPublicAPIClusters(t *testing.T) {
	d := approxhadoop.DefaultCluster()
	if d.Servers != 10 {
		t.Errorf("default cluster: %+v", d)
	}
	a := approxhadoop.AtomCluster()
	if a.Servers != 60 {
		t.Errorf("atom cluster: %+v", a)
	}
}

func TestPublicAPIPerTaskMappers(t *testing.T) {
	p := func() approxhadoop.Mapper {
		return approxhadoop.MapperFunc(func(approxhadoop.Record, approxhadoop.Emitter) {})
	}
	f := approxhadoop.PerTaskMappers(0.5, 1, p, p)
	if f(0) == nil {
		t.Error("factory returned nil mapper")
	}
}
