package approxhadoop_test

import (
	"bytes"
	"runtime"
	"strconv"
	"testing"

	approxhadoop "approxhadoop"
)

// streamSeries runs the canonical streaming determinism query — an
// adaptive windowed sum over a diurnally paced replay of the text
// corpus — and renders the window series in its canonical byte form.
func streamSeries(t *testing.T, workers int) []byte {
	t.Helper()
	file := approxhadoop.SplitText("stream.txt", corpus(), 1024)
	q := approxhadoop.StreamQuery{
		Name: "line-bytes",
		Op:   approxhadoop.StreamSum,
		Stratify: func(line []byte) []byte {
			if i := bytes.IndexByte(line, ' '); i > 0 {
				return line[:i]
			}
			return line
		},
		Value: func(line []byte) (float64, bool) {
			return float64(len(line)), true
		},
		Window:   approxhadoop.StreamWindow{Size: 2},
		SLO:      approxhadoop.StreamSLO{TargetRelErr: 0.1, MaxLatency: 0.05},
		Capacity: 16,
		Seed:     21,
	}
	p := &approxhadoop.StreamPipeline{
		Query:      q,
		Source:     approxhadoop.StreamFromFile(file, approxhadoop.StreamOptions{Rate: approxhadoop.DiurnalRate(300, 0.5, 6), Seed: 21}),
		Controller: approxhadoop.NewStreamController(q.SLO, approxhadoop.DefaultStreamCost()),
		Workers:    workers,
		MaxWindows: 8,
	}
	series, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("stream emitted no windows")
	}
	return approxhadoop.StreamSeriesBytes(series)
}

// TestStreamSeriesDeterministic is the streaming plane's acceptance
// check, the sibling of TestSameSeedRunsIdentical: the same (query,
// seed, rate trace) must emit a byte-identical window series across
// repeat runs and for any fold-pool size. Shards — not Workers — own
// strata, so the pool size must be invisible to every reservoir draw,
// shedding coin, and modeled latency in the series.
func TestStreamSeriesDeterministic(t *testing.T) {
	base := streamSeries(t, 1)
	if again := streamSeries(t, 1); !bytes.Equal(base, again) {
		t.Errorf("series differs between two identical runs:\n%s\nvs\n%s", base, again)
	}
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0) + 1} {
		if got := streamSeries(t, w); !bytes.Equal(base, got) {
			t.Errorf("series differs between Workers=1 and Workers="+strconv.Itoa(w)+":\n%s\nvs\n%s", base, got)
		}
	}
}
