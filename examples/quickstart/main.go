// Quickstart: the paper's ApproxWordCount (Figure 3) on the public
// API. The precise Hadoop word count becomes approximate by swapping
// in the MultiStageSampling classes and the ApproxTextInput format —
// the map and reduce logic is untouched.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	approxhadoop "approxhadoop"
)

// makeCorpus builds a small synthetic document collection.
func makeCorpus() []byte {
	words := []string{"lorem", "ipsum", "nisi", "sit", "ut", "laboris", "dolor", "amet"}
	var sb strings.Builder
	for doc := 0; doc < 5000; doc++ {
		for w := 0; w <= doc%5; w++ {
			sb.WriteString(words[(doc+w*3)%len(words)])
			sb.WriteByte(' ')
		}
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

func wordCount(input *approxhadoop.File, ctl approxhadoop.Controller) *approxhadoop.Job {
	return &approxhadoop.Job{
		Name:   "ApproxWordCount",
		Input:  input,
		Format: approxhadoop.ApproxTextInput{}, // line #17 of the paper's Figure 3
		NewMapper: func() approxhadoop.Mapper { // the unchanged map()
			return approxhadoop.MapperFunc(func(rec approxhadoop.Record, emit approxhadoop.Emitter) {
				for _, w := range strings.Fields(rec.Value) {
					emit.Emit(w, 1)
				}
			})
		},
		NewReduce:  approxhadoop.MultiStageSumReduce, // MultiStageSamplingReducer
		Combine:    true,
		Controller: ctl,
		Cost:       approxhadoop.PaperCost(),
		Seed:       1,
	}
}

func main() {
	sys := approxhadoop.NewSystem(approxhadoop.DefaultCluster())
	input := approxhadoop.SplitText("documents.txt", makeCorpus(), 4096)
	if err := sys.Store(input); err != nil {
		log.Fatal(err)
	}

	precise, err := sys.Run(wordCount(input, nil))
	if err != nil {
		log.Fatal(err)
	}
	// 10% input sampling + 25% task dropping, as a user would specify.
	apx, err := sys.Run(wordCount(input, approxhadoop.Ratios(0.10, 0.25)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("precise:     %6.1f simulated seconds (%d items)\n",
		precise.Runtime, precise.Counters.ItemsProcessed)
	fmt.Printf("approximate: %6.1f simulated seconds (%d items, %d of %d maps)\n\n",
		apx.Runtime, apx.Counters.ItemsProcessed,
		apx.Counters.MapsCompleted, apx.Counters.MapsTotal)
	fmt.Printf("%-10s %10s %24s\n", "word", "precise", "approximate (95% CI)")
	for _, p := range precise.Outputs {
		a, ok := apx.Output(p.Key)
		if !ok {
			fmt.Printf("%-10s %10.0f %24s\n", p.Key, p.Est.Value, "(missed by sampling)")
			continue
		}
		fmt.Printf("%-10s %10.0f %16.0f ± %-6.0f\n", p.Key, p.Est.Value, a.Est.Value, a.Est.Err)
	}
}
