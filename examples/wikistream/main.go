// Streaming plane: "edits per project, live" over the synthetic
// Wikipedia edit log from examples/wikidistinct, replayed as a
// virtual-clock paced stream whose rate swings 3x on a diurnal curve.
// Each 10-second window closes with a multi-stage-sampling estimate
// and 95% confidence interval; the adaptive controller retunes the
// next window's sampling plan so the error/latency SLO keeps holding
// as the rate swings. Run it twice — the window series is
// byte-identical, whatever the worker count.
//
//	go run ./examples/wikistream
package main

import (
	"fmt"
	"log"
	"strings"

	approxhadoop "approxhadoop"
)

// makeEditLog builds the same seeded synthetic edit log as
// examples/wikidistinct: one "project<TAB>editor" line per edit,
// skewed so early projects get most of the edits.
func makeEditLog() []byte {
	var sb strings.Builder
	state := uint64(20150313)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	for i := 0; i < 120000; i++ {
		proj := next(40)
		proj = proj * proj / 40 // quadratic skew toward project 0
		editor := next(200 + proj*400)
		fmt.Fprintf(&sb, "proj%02d\ted%05d\n", proj, editor)
	}
	return []byte(sb.String())
}

func main() {
	input := approxhadoop.SplitText("edits.log", makeEditLog(), 1<<15)

	// Edits per window, stratified by project: each project is one
	// substream — a sampling cluster in the window's estimate, exactly
	// the role a map task's block plays in the batch plane.
	query := approxhadoop.StreamQuery{
		Name: "edit-rate",
		Op:   approxhadoop.StreamCount,
		Stratify: func(line []byte) []byte {
			for i, c := range line {
				if c == '\t' {
					return line[:i]
				}
			}
			return nil
		},
		Window:   approxhadoop.StreamWindow{Size: 10},
		Capacity: 64,
		Seed:     7,
	}
	slo := approxhadoop.StreamSLO{MaxLatency: 0.05}

	pipeline := &approxhadoop.StreamPipeline{
		Query: query,
		Source: approxhadoop.StreamFromFile(input, approxhadoop.StreamOptions{
			Rate: approxhadoop.DiurnalRate(400, 0.5, 120), // 200..600 edits/s
			Seed: 7,
		}),
		Controller: approxhadoop.NewStreamController(slo, approxhadoop.DefaultStreamCost()),
		MaxWindows: 12,
	}

	fmt.Println("live edits per 10s window (count ± 95% CI):")
	err := pipeline.RunEach(func(w approxhadoop.WindowResult) error {
		tag := ""
		switch {
		case w.Exact:
			tag = "exact"
		case w.Degraded:
			tag = fmt.Sprintf("degraded keep=%.2f", w.Plan.KeepFrac)
		}
		fmt.Printf("[%5.0fs,%5.0fs) %8.0f ± %-7.0f strata=%2d/%2d lat=%.4fs %s\n",
			w.Start, w.End, w.Est.Value, w.Est.Err, w.Processed, w.Strata, w.Latency, tag)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
