// Energy saving with task dropping and ACPI S3 (Section 5.4 / Figure
// 12): a single-wave job cannot finish earlier by dropping maps, but
// the servers whose maps were dropped go to sleep, cutting energy.
//
//	go run ./examples/energysaving
package main

import (
	"fmt"
	"log"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/apps"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/harness"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/workload"
)

func main() {
	// 80 blocks over 80 map slots: exactly one wave.
	web := workload.WebLog{
		Blocks: 80, LinesPerBlock: 4000, Clients: 3000,
		Attackers: 40, AttackRate: 0.02, Seed: 11,
	}.File("webserver-log")

	run := func(drop float64) *mapreduce.Result {
		var ctl mapreduce.Controller
		if drop > 0 {
			ctl = approx.NewStatic(1, drop)
		}
		eng := cluster.New(cluster.DefaultConfig())
		// Concentrate the reduces on two servers so map-free servers
		// can actually enter S3.
		res, err := mapreduce.Run(eng, apps.WebRequestRate(web, apps.Options{
			Controller: ctl, Cost: harness.PaperCost(), Seed: 2, SleepIdle: true, Reduces: 2,
		}))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("%-12s %12s %12s %12s %16s\n", "maps run", "runtime(s)", "energy(Wh)", "S3 (Wh)", "worst 95% CI")
	for _, drop := range []float64{0, 0.25, 0.5, 0.75} {
		res := run(drop)
		fmt.Printf("%-12d %12.1f %12.2f %12.2f %15.2f%%\n",
			res.Counters.MapsCompleted, res.Runtime, res.EnergyWh,
			res.Energy.SleepJ/3600, res.MaxRelErr()*100)
	}
	fmt.Println("\nruntime stays flat (single wave) while energy falls with dropping: the")
	fmt.Println("servers whose maps were dropped transition to S3 for the rest of the job.")
}
