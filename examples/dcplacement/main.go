// Datacenter placement with extreme-value (GEV) error bounds: each map
// task runs an independent simulated-annealing search for the lowest
// cost placement; the reduce fits a GEV distribution to the per-task
// minima and terminates the job as soon as the 95% interval around the
// estimated achievable minimum is within 5% (Section 3.2 / Figure 2).
//
//	go run ./examples/dcplacement
package main

import (
	"fmt"
	"log"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/apps"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/harness"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/workload"
)

func main() {
	seeds := workload.SearchSeeds("search-seeds", 80, 7)
	cfg := apps.DCPlacementConfig{Geo: apps.DefaultGeography(), Iters: 2500}

	run := func(ctl mapreduce.Controller) *mapreduce.Result {
		cc := cluster.DefaultConfig()
		cc.MapSlotsPerServer = 4 // the paper's most efficient CPU-bound setting
		eng := cluster.New(cc)
		res, err := mapreduce.Run(eng, apps.DCPlacement(seeds, cfg, apps.Options{
			Controller: ctl, Cost: harness.PaperCost(), Seed: 5,
		}))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	precise := run(nil)
	apx := run(&approx.TargetErrorGEV{Target: 0.05, MinMaps: 12})

	p := precise.Outputs[0].Est
	a := apx.Outputs[0].Est
	fmt.Printf("geography: %dx%d grid, %d datacenters, %.0f ms latency cap\n\n",
		cfg.Geo.Rows, cfg.Geo.Cols, cfg.Geo.K, cfg.Geo.MaxLatencyMS)
	fmt.Printf("all %d searches:    min cost %.1f in %.1f s simulated\n",
		precise.Counters.MapsCompleted, p.Value, precise.Runtime)
	fmt.Printf("GEV early stop:     min cost %.1f ± %.1f after %d searches in %.1f s (%.0f%% faster)\n",
		a.Value, a.Err, apx.Counters.MapsCompleted, apx.Runtime,
		(1-apx.Runtime/precise.Runtime)*100)
	fmt.Printf("maps killed/dropped when the 5%% bound was reached: %d + %d\n",
		apx.Counters.MapsKilled, apx.Counters.MapsDropped)
}
