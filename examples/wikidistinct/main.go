// Sketch plane: "distinct editors per project" over a synthetic
// Wikipedia edit log, run twice on identical input — once with the
// exact composite-pairs shuffle and once with the sketch-compressed
// representation (Job.Sketch), where every map task ships one small
// HyperLogLog per project instead of one pair per (project, editor).
// The job definition is otherwise unchanged: the mapper emits through
// EmitElement and DistinctReduce handles both representations.
//
//	go run ./examples/wikidistinct
package main

import (
	"fmt"
	"log"
	"strings"

	approxhadoop "approxhadoop"
)

// makeEditLog builds a seeded synthetic edit log, one
// "project<TAB>editor" line per edit, skewed so early projects get
// most of the edits (like real wikis).
func makeEditLog() []byte {
	var sb strings.Builder
	state := uint64(20150313)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	for i := 0; i < 120000; i++ {
		proj := next(40)
		proj = proj * proj / 40 // quadratic skew toward project 0
		editor := next(200 + proj*400)
		fmt.Fprintf(&sb, "proj%02d\ted%05d\n", proj, editor)
	}
	return []byte(sb.String())
}

func distinctEditors(input *approxhadoop.File, sketch bool) *approxhadoop.Job {
	job := &approxhadoop.Job{
		Name:   "DistinctEditors",
		Input:  input,
		Format: approxhadoop.ApproxTextInput{},
		NewMapper: func() approxhadoop.Mapper {
			return approxhadoop.MapperFunc(func(rec approxhadoop.Record, emit approxhadoop.Emitter) {
				proj, editor, ok := strings.Cut(rec.Value, "\t")
				if !ok {
					return
				}
				approxhadoop.EmitElement(emit, proj, editor, 1)
			})
		},
		NewReduce: approxhadoop.DistinctReduce,
		Cost:      approxhadoop.PaperCost(),
		Seed:      7,
	}
	if sketch {
		job.Sketch = &approxhadoop.SketchPlan{Kind: approxhadoop.SketchDistinct}
	} else {
		job.Combine = true // exact baseline still combines map-side
	}
	return job
}

func main() {
	sys := approxhadoop.NewSystem(approxhadoop.DefaultCluster())
	input := approxhadoop.SplitText("edits.log", makeEditLog(), 1<<15)
	if err := sys.Store(input); err != nil {
		log.Fatal(err)
	}

	type run struct {
		name    string
		res     *approxhadoop.Result
		shuffle int64
	}
	var runs []run
	for _, sketch := range []bool{false, true} {
		name := "pairs "
		if sketch {
			name = "sketch"
		}
		before := approxhadoop.TotalShuffleBytes()
		res, err := sys.Run(distinctEditors(input, sketch))
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, run{name, res, approxhadoop.TotalShuffleBytes() - before})
	}

	pairs, sk := runs[0], runs[1]
	fmt.Printf("shuffle volume: pairs %d bytes, sketch %d bytes (%.1fx smaller)\n\n",
		pairs.shuffle, sk.shuffle, float64(pairs.shuffle)/float64(sk.shuffle))
	fmt.Printf("%-8s %14s %26s\n", "project", "exact distinct", "HLL estimate (95% CI)")
	for i, p := range pairs.res.Outputs {
		if i >= 10 {
			break
		}
		a, ok := sk.res.Output(p.Key)
		if !ok {
			continue
		}
		fmt.Printf("%-8s %14.0f %18.0f ± %-6.0f\n", p.Key, p.Est.Value, a.Est.Value, a.Est.Err)
	}
}
