// User-defined approximation (the paper's third mechanism, studied in
// the technical report): the user supplies a precise and an
// approximate version of the map code, and a fraction of tasks runs
// the cheap variant. ApproxHadoop cannot bound such errors — quality
// is measured by the application's own metric (here: mean frame
// quality of a synthetic video encoder, and centroid drift for a
// K-Means iteration).
//
//	go run ./examples/userdefined
package main

import (
	"fmt"
	"log"

	"approxhadoop/internal/apps"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/mapreduce"
)

func main() {
	runVideo()
	runKMeans()
}

func runVideo() {
	frames := apps.VideoData("movie", 40, 400, 3)
	fmt.Println("VideoEncoding: precise = 6 motion-search passes, approximate = 2")
	fmt.Printf("%-14s %14s %14s\n", "approx tasks", "mean quality", "real compute(s)")
	for _, ratio := range []float64{0, 0.25, 0.5, 1} {
		eng := cluster.New(cluster.DefaultConfig())
		res, err := mapreduce.Run(eng, apps.VideoEncoding(frames,
			apps.VideoEncodingConfig{ApproxRatio: ratio}, apps.Options{Seed: 1}))
		if err != nil {
			log.Fatal(err)
		}
		q, _ := res.Output("quality")
		f, _ := res.Output("frames")
		fmt.Printf("%13.0f%% %14.2f %14.3f\n", ratio*100, q.Est.Value/f.Est.Value, res.RealSecs)
	}
	fmt.Println()
}

func runKMeans() {
	points := apps.KMeansData("points", 40, 2000, 4, 5)
	base := apps.KMeansConfig{Centroids: [][2]float64{{2, 2}, {12, 2}, {2, 12}, {12, 12}}}

	iterate := func(ratio float64) ([][2]float64, *mapreduce.Result) {
		cfg := base
		cfg.ApproxRatio = ratio
		eng := cluster.New(cluster.DefaultConfig())
		res, err := mapreduce.Run(eng, apps.KMeansIteration(points, cfg, apps.Options{Seed: 1}))
		if err != nil {
			log.Fatal(err)
		}
		return apps.CentroidsFromResult(res, 4), res
	}

	precise, _ := iterate(0)
	fmt.Println("KMeans: approximate mapper subsamples its points 10:1 (rescaled)")
	fmt.Printf("%-14s %18s %16s\n", "approx tasks", "centroid shift", "real compute(s)")
	for _, ratio := range []float64{0.25, 0.5, 1} {
		cent, res := iterate(ratio)
		fmt.Printf("%13.0f%% %18.4f %16.3f\n", ratio*100, apps.CentroidShift(precise, cent), res.RealSecs)
	}
}
