// Log analysis with a target error bound: Project Popularity over a
// synthetic Wikipedia access log. The user asks for ±1% at 95%
// confidence; ApproxHadoop runs the first wave precisely, solves the
// Section 4.4 optimization, and drops/samples the rest.
//
//	go run ./examples/loganalysis
package main

import (
	"fmt"
	"log"
	"sort"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/apps"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/harness"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/workload"
)

func main() {
	// ~740 blocks, like the paper's one-week 46GB log (nine waves on
	// the 80-slot cluster), with laptop-scale per-block record counts.
	logFile := workload.AccessLog{
		Blocks: 740, LinesPerBlock: 1000, Projects: 400, Pages: 20000, Seed: 9,
	}.File("wiki-access-log")

	run := func(ctl mapreduce.Controller) *mapreduce.Result {
		eng := cluster.New(cluster.DefaultConfig())
		res, err := mapreduce.Run(eng, apps.ProjectPopularity(logFile, apps.Options{
			Controller: ctl, Cost: harness.PaperCost(), Seed: 3,
		}))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	precise := run(nil)
	apx := run(&approx.TargetError{Target: 0.01})

	fmt.Printf("precise:   %.1f s simulated, %d/%d items\n",
		precise.Runtime, precise.Counters.ItemsProcessed, precise.Counters.ItemsTotal)
	fmt.Printf("±1%% bound: %.1f s simulated, %d/%d items, %d/%d maps -> %.0f%% faster\n\n",
		apx.Runtime, apx.Counters.ItemsProcessed, apx.Counters.ItemsTotal,
		apx.Counters.MapsCompleted, apx.Counters.MapsTotal,
		(1-apx.Runtime/precise.Runtime)*100)

	outs := append([]mapreduce.KeyEstimate(nil), apx.Outputs...)
	sort.Slice(outs, func(i, j int) bool { return outs[i].Est.Value > outs[j].Est.Value })
	fmt.Printf("%-10s %14s %22s\n", "project", "precise", "approximate (95% CI)")
	for i, o := range outs {
		if i == 10 {
			break
		}
		p, _ := precise.Output(o.Key)
		fmt.Printf("%-10s %14.0f %14.0f ± %-8.0f\n", o.Key, p.Est.Value, o.Est.Value, o.Est.Err)
	}
}
