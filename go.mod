module approxhadoop

go 1.22
