package approxhadoop_test

import (
	"runtime"
	"strconv"
	"testing"

	approxhadoop "approxhadoop"
	"approxhadoop/internal/stats"
)

// checkTraceInvariants verifies the structural accounting of a
// recorded execution trace against the job's counters. The invariants
// hold for any job without a Retry.JobDeadline (deadline-cut attempts
// close by degrading the task rather than by a per-attempt event):
//
//   - events are in nondecreasing virtual-time order;
//   - job-completed occurs exactly once, as the last event;
//   - every launched attempt (map-launched or map-speculated) is closed
//     by exactly one terminal event (map-completed, map-killed or
//     map-failed) for its task — attempts and closures balance per task;
//   - a task completes at most once, and a completed task is never also
//     dropped or degraded;
//   - per-kind event counts equal the corresponding result counters.
func checkTraceInvariants(t *testing.T, label string, res *approxhadoop.Result) {
	t.Helper()
	events := res.Trace
	if len(events) == 0 {
		t.Fatalf("%s: no trace events recorded", label)
	}

	jobDone := 0
	perTask := map[int]map[approxhadoop.EventKind]int{}
	counts := map[approxhadoop.EventKind]int{}
	for i, e := range events {
		if i > 0 && e.Time < events[i-1].Time {
			t.Errorf("%s: event %d (%s) at t=%v before predecessor at t=%v",
				label, i, e.Kind, e.Time, events[i-1].Time)
		}
		counts[e.Kind]++
		if e.Kind == approxhadoop.EventJobCompleted {
			jobDone++
			if i != len(events)-1 {
				t.Errorf("%s: job-completed at index %d of %d, not last", label, i, len(events))
			}
			continue
		}
		if e.Task >= 0 && e.Kind != approxhadoop.EventReduceFinished {
			m := perTask[e.Task]
			if m == nil {
				m = map[approxhadoop.EventKind]int{}
				perTask[e.Task] = m
			}
			m[e.Kind]++
		}
	}
	if jobDone != 1 {
		t.Errorf("%s: %d job-completed events, want exactly 1", label, jobDone)
	}

	for task, m := range perTask {
		launches := m[approxhadoop.EventMapLaunched] + m[approxhadoop.EventMapSpeculated]
		closures := m[approxhadoop.EventMapCompleted] + m[approxhadoop.EventMapKilled] + m[approxhadoop.EventMapFailed]
		if launches != closures {
			t.Errorf("%s: task %d: %d launched attempts but %d terminal events (%v)",
				label, task, launches, closures, m)
		}
		if m[approxhadoop.EventMapCompleted] > 1 {
			t.Errorf("%s: task %d completed %d times", label, task, m[approxhadoop.EventMapCompleted])
		}
		if m[approxhadoop.EventMapCompleted] == 1 &&
			(m[approxhadoop.EventMapDropped] > 0 || m[approxhadoop.EventMapDegraded] > 0) {
			t.Errorf("%s: task %d both completed and dropped/degraded (%v)", label, task, m)
		}
		if m[approxhadoop.EventMapDropped]+m[approxhadoop.EventMapDegraded] > 1 {
			t.Errorf("%s: task %d dropped/degraded more than once (%v)", label, task, m)
		}
	}

	c := res.Counters
	for _, want := range []struct {
		kind approxhadoop.EventKind
		n    int
	}{
		{approxhadoop.EventMapCompleted, c.MapsCompleted},
		{approxhadoop.EventMapKilled, c.MapsKilled},
		{approxhadoop.EventMapFailed, c.MapsFailed},
		{approxhadoop.EventMapRetried, c.MapsRetried},
		{approxhadoop.EventMapDropped, c.MapsDropped},
		{approxhadoop.EventMapDegraded, c.MapsDegraded},
		{approxhadoop.EventMapSpeculated, c.MapsSpeculated},
		{approxhadoop.EventServerBlacklisted, c.ServersBlacklisted},
	} {
		if counts[want.kind] != want.n {
			t.Errorf("%s: %d %s events but counter says %d", label, counts[want.kind], want.kind, want.n)
		}
	}
}

// compareTraces requires two runs' event logs to agree bitwise: same
// length, and the same kind/time/task/server/ratio at every position.
func compareTraces(t *testing.T, label string, a, b []approxhadoop.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.Task != y.Task || x.Server != y.Server ||
			!stats.AlmostEqual(x.Time, y.Time, 0) ||
			!stats.AlmostEqual(x.Ratio, y.Ratio, 0) {
			t.Fatalf("%s: event %d differs:\n got %v\nwant %v", label, i, y, x)
		}
	}
}

// TestTraceInvariants extends the determinism acceptance check to the
// scheduling-event log: the canonical jobs (clean and fault-injected)
// must record structurally consistent traces, and the entire event
// sequence — not just the outputs — must be identical for any
// map-compute pool size. A pool-size-dependent event order here is the
// first symptom of compute leaking onto the virtual timeline, caught
// long before it shows up as a diverging estimate.
func TestTraceInvariants(t *testing.T) {
	for _, tc := range []struct {
		name       string
		withFaults bool
	}{{"clean", false}, {"faults", true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := detRun(t, 1, tc.withFaults)
			checkTraceInvariants(t, "workers=1", base)
			for _, w := range []int{2, runtime.GOMAXPROCS(0) + 1} {
				pooled := detRun(t, w, tc.withFaults)
				label := "workers=" + strconv.Itoa(w)
				checkTraceInvariants(t, label, pooled)
				compareTraces(t, label, base.Trace, pooled.Trace)
			}
		})
	}
}
