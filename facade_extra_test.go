package approxhadoop_test

import (
	"bytes"
	"strings"
	"testing"

	approxhadoop "approxhadoop"
)

func TestFacadeReducersAndWriters(t *testing.T) {
	// Every template constructor must return a usable ReduceLogic.
	for name, mk := range map[string]func(int) approxhadoop.ReduceLogic{
		"sum":   approxhadoop.MultiStageSumReduce,
		"count": approxhadoop.MultiStageCountReduce,
		"mean":  approxhadoop.MultiStageMeanReduce,
		"min":   approxhadoop.ApproxMinReduce,
		"max":   approxhadoop.ApproxMaxReduce,
		"plain": approxhadoop.SumReduce,
	} {
		if mk(0) == nil {
			t.Errorf("%s constructor returned nil", name)
		}
	}
	if approxhadoop.Ratios(0.5, 0.25).Name() == "" {
		t.Error("Ratios controller name")
	}
	if approxhadoop.TargetError(0.01).Name() == "" {
		t.Error("TargetError controller name")
	}
	if c := approxhadoop.PaperCost(); c.T0 <= 0 {
		t.Error("PaperCost")
	}

	sys := approxhadoop.NewSystem(approxhadoop.DefaultCluster())
	input := approxhadoop.SplitText("w.txt", corpus(), 4096)
	res, err := sys.Run(wordCountJob(sys, input, nil))
	if err != nil {
		t.Fatal(err)
	}
	var text, tsv, js bytes.Buffer
	if err := approxhadoop.WriteText(&text, res); err != nil {
		t.Fatal(err)
	}
	if err := approxhadoop.WriteTSV(&tsv, res); err != nil {
		t.Fatal(err)
	}
	if err := approxhadoop.WriteJSON(&js, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "lorem") || !strings.Contains(tsv.String(), "lorem") ||
		!strings.Contains(js.String(), "lorem") {
		t.Error("writers missing output keys")
	}
}
