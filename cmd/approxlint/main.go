// Command approxlint runs the repository's static-analysis suite (see
// internal/analysis): repo-specific checks that keep the simulator
// deterministic and the statistics trustworthy, including the
// whole-program purity, hotpath, and lockheld analyzers built on the
// cross-package call graph.
//
// Usage:
//
//	approxlint [flags] [packages]
//
//	approxlint ./...                     # everything, all analyzers
//	approxlint -disable nopanic ./...    # all but one
//	approxlint -enable virtualclock ./.. # exactly one
//	approxlint -json ./...               # machine-readable findings
//	approxlint -stale-ignores ./...      # also flag dead suppressions
//
// Findings are suppressed in source with
// `//lint:ignore <analyzer> reason` on the offending line or the line
// above. Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"approxhadoop/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		list    = flag.Bool("list", false, "list analyzers and exit")
		enable  = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = flag.String("disable", "", "comma-separated analyzers to skip")
		noTests = flag.Bool("notests", false, "skip _test.go files")
		stale   = flag.Bool("stale-ignores", false,
			"also report lint:ignore comments that suppress nothing (requires the full analyzer suite)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "approxlint:", err)
		return 2
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "approxlint: no analyzers selected")
		return 2
	}
	if *stale && (*enable != "" || *disable != "") {
		// With a subset enabled, directives for the skipped analyzers
		// would be reported as stale even though they still do their
		// job on a full run.
		fmt.Fprintln(os.Stderr, "approxlint: -stale-ignores requires the full analyzer suite (no -enable/-disable)")
		return 2
	}

	loader := &analysis.Loader{Tests: !*noTests}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "approxlint:", err)
		return 2
	}

	diags := analysis.RunWithOptions(pkgs, analyzers, analysis.Options{StaleIgnores: *stale})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "approxlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "approxlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
