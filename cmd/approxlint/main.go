// Command approxlint runs the repository's static-analysis suite (see
// internal/analysis): repo-specific checks that keep the simulator
// deterministic and the statistics trustworthy.
//
// Usage:
//
//	approxlint [flags] [packages]
//
//	approxlint ./...                     # everything, all analyzers
//	approxlint -disable nopanic ./...    # all but one
//	approxlint -enable virtualclock ./.. # exactly one
//	approxlint -json ./...               # machine-readable findings
//
// Findings are suppressed in source with
// `//lint:ignore <analyzer> reason` on the offending line or the line
// above. Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"approxhadoop/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		list    = flag.Bool("list", false, "list analyzers and exit")
		enable  = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = flag.String("disable", "", "comma-separated analyzers to skip")
		noTests = flag.Bool("notests", false, "skip _test.go files")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "approxlint:", err)
		return 2
	}

	loader := &analysis.Loader{Tests: !*noTests}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "approxlint:", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "approxlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "approxlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// selectAnalyzers applies the -enable/-disable flags to the registry.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	var out []*analysis.Analyzer
	if enable != "" {
		for _, name := range strings.Split(enable, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			out = append(out, a)
		}
	} else {
		out = analysis.All()
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			skip[name] = true
		}
		kept := out[:0]
		for _, a := range out {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		out = kept
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}
