// Command approxctl is the client and load generator for approxd, the
// multi-tenant ApproxHadoop job service.
//
// Usage:
//
//	approxctl [-addr URL] <command> [flags]
//
//	approxctl submit -app total-size -controller static -sample 0.25
//	approxctl submit -app clients -key billing-2026-08  # idempotent submit
//	approxctl status                 # list all jobs
//	approxctl status job-0000        # one job
//	approxctl watch job-0000         # follow the early-result stream
//	approxctl result job-0000
//	approxctl await job-0000         # block until terminal, fail unless done
//	approxctl verify job-0000        # served result must be byte-identical
//	                                 # to a direct local run of its spec
//	approxctl cancel job-0000
//	approxctl stats
//	approxctl replay -n 50 -seed 42  # run a seeded trace via /v1/replay
//	approxctl loadgen -n 20 -seed 7  # hammer a live daemon concurrently
//	approxctl smoke -n 6 -seed 3     # end-to-end check: streamed estimates
//	                                 # converge to the final result, and the
//	                                 # final matches a direct local run
//
// Transient failures retry with seeded exponential backoff (-retries,
// -retry-seed): GETs and cancels always, submissions only when they
// carry an idempotency key (-key) — a keyed retry can never double-run
// a job, even across a daemon crash and restart, because approxd
// journals the key with the spec. Interrupted streams reconnect and
// resume from the last seen sequence number.
//
// smoke and verify exit nonzero on any divergence; CI runs them
// against freshly started (and, for the chaos job, kill -9'd and
// restarted) approxd instances.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"time"

	"approxhadoop/internal/jobserver"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stats"
	"approxhadoop/internal/wire"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: approxctl [-addr URL] [-retries N] {submit|status|result|await|verify|cancel|watch|stats|replay|loadgen|smoke} [flags]")
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7070", "approxd base URL")
	retries := flag.Int("retries", 4, "retry budget for transient failures (connection errors, 429/503)")
	retrySeed := flag.Int64("retry-seed", 1, "seed for backoff jitter, so retry schedules are reproducible")
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
	}
	c := &client{base: *addr, retries: *retries, rng: stats.NewRand(*retrySeed)}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(c, args)
	case "status":
		err = cmdStatus(c, args)
	case "result":
		err = cmdResult(c, args)
	case "await":
		err = cmdAwait(c, args)
	case "verify":
		err = cmdVerify(c, args)
	case "cancel":
		err = cmdCancel(c, args)
	case "watch":
		err = cmdWatch(c, args)
	case "stats":
		err = cmdStats(c)
	case "replay":
		err = cmdReplay(c, args)
	case "loadgen":
		err = cmdLoadgen(c, args)
	case "smoke":
		err = cmdSmoke(c, args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "approxctl: %v\n", err)
		os.Exit(1)
	}
}

// client is a JSON-over-HTTP wrapper around the approxd API with
// seeded-backoff retries for transient failures.
type client struct {
	base    string
	retries int

	// rng drives backoff jitter; loadgen/smoke retry from many
	// goroutines, so draws are mutex-guarded.
	mu  sync.Mutex
	rng *rand.Rand
}

// apiError is the daemon's {"error": ...} payload with its HTTP status
// and any Retry-After hint.
type apiError struct {
	Code       int
	Msg        string
	RetryAfter time.Duration
}

func (e *apiError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.Code, e.Msg) }

// drainClose discards a response's unread body and closes it, so the
// keep-alive connection is reusable. Errors are reported to stderr —
// there is no caller decision to change, but they should not vanish.
// The drain is bounded: error paths may abandon a still-streaming body,
// and reading it to completion could mean waiting out the whole job.
func drainClose(resp *http.Response) {
	if _, err := io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)); err != nil {
		fmt.Fprintf(os.Stderr, "approxctl: draining response body: %v\n", err)
	}
	if err := resp.Body.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "approxctl: closing response body: %v\n", err)
	}
}

// retriable reports whether err is worth retrying: connection-level
// failures (the daemon may be mid-restart) and explicit backpressure
// (429 queue-full, 503 draining), never other API errors — a 400 or
// 404 will not improve with patience.
func retriable(err error) bool {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Code == http.StatusTooManyRequests || ae.Code == http.StatusServiceUnavailable
	}
	return err != nil
}

// backoff returns the pause before retry `attempt`: exponential from
// 50 ms capped at 2 s, scaled by seeded jitter in [0.5, 1.0], and
// floored by any server-provided Retry-After.
func (c *client) backoff(attempt int, err error) time.Duration {
	d := 50 * time.Millisecond
	for i := 0; i < attempt && d < 2*time.Second; i++ {
		d *= 2
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	c.mu.Lock()
	jitter := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	var ae *apiError
	if errors.As(err, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return d
}

func (c *client) do(method, path string, in, out any) error {
	// GETs and DELETEs (cancel) are idempotent by construction; POSTs
	// must opt in via doRetriable.
	return c.doRetry(method, path, in, out, method != http.MethodPost)
}

func (c *client) doRetry(method, path string, in, out any, canRetry bool) error {
	for attempt := 0; ; attempt++ {
		err := c.doOnce(method, path, in, out)
		if err == nil || !canRetry || attempt >= c.retries || !retriable(err) {
			return err
		}
		time.Sleep(c.backoff(attempt, err))
	}
}

func (c *client) doOnce(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode >= 400 {
		return apiErrorFrom(resp)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// apiErrorFrom builds an apiError from an error response, tolerating
// non-JSON bodies (a bare status code is an acceptable fallback).
func apiErrorFrom(resp *http.Response) *apiError {
	ae := &apiError{Code: resp.StatusCode}
	var msg struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&msg); err == nil {
		ae.Msg = msg.Error
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	return ae
}

func (c *client) get(path string, out any) error { return c.do(http.MethodGet, path, nil, out) }
func (c *client) post(path string, in, out any) error {
	return c.do(http.MethodPost, path, in, out)
}

// submit POSTs one spec. Keyed submissions retry freely — the daemon
// deduplicates by the journaled idempotency key, so a retry that races
// a crash can at worst be answered with the original job's id.
func (c *client) submit(spec jobserver.JobSpec) (id string, held int, err error) {
	var resp struct {
		ID   string `json:"id"`
		Held int    `json:"held"`
	}
	err = c.doRetry(http.MethodPost, "/v1/jobs", spec, &resp, spec.IdempotencyKey != "")
	return resp.ID, resp.Held, err
}

// specFlags registers the JobSpec surface on fs and returns a builder.
func specFlags(fs *flag.FlagSet) func() jobserver.JobSpec {
	var s jobserver.JobSpec
	fs.StringVar(&s.Name, "name", "", "job name (default <app>-<seed>)")
	fs.StringVar(&s.App, "app", "total-size", "catalog application: "+fmt.Sprint(jobserver.Apps()))
	fs.IntVar(&s.Blocks, "blocks", 0, "input blocks == map tasks (default 48)")
	fs.IntVar(&s.LinesPerBlock, "lines", 0, "lines per block (default 200)")
	fs.Int64Var(&s.Seed, "seed", 1, "input/sampling seed")
	fs.Float64Var(&s.Weight, "weight", 0, "fair-share weight (default 1)")
	fs.StringVar(&s.Controller, "controller", "", "precise | static | target | deadline")
	fs.Float64Var(&s.SampleRatio, "sample", 0, "static: input sampling ratio (0,1]")
	fs.Float64Var(&s.DropRatio, "drop", 0, "static: map-task dropping ratio [0,1)")
	fs.Float64Var(&s.Target, "target", 0, "target: relative error bound")
	fs.Float64Var(&s.Deadline, "deadline", 0, "deadline: SLO in virtual seconds")
	fs.BoolVar(&s.BestEffort, "best-effort", false, "deadline: degrade instead of failing on overrun")
	fs.StringVar(&s.IdempotencyKey, "key", "", "idempotency key: duplicate submissions (and blind retries) return the original job")
	fs.StringVar(&s.Tenant, "tenant", "", "tenant identity: placement key on a sharded daemon, quota subject")
	return func() jobserver.JobSpec { return s }
}

func cmdSubmit(c *client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	spec := specFlags(fs)
	//lint:ignore errcheck ExitOnError flag sets never return an error
	_ = fs.Parse(args)
	id, held, err := c.submit(spec())
	if err != nil {
		return err
	}
	if id == "" {
		fmt.Printf("held (%d parked; POST /v1/release to run)\n", held)
		return nil
	}
	fmt.Println(id)
	return nil
}

func printState(st jobserver.WireState) {
	line := fmt.Sprintf("%-9s %-28s %-9s submit@%.1f", st.ID, st.Spec.Name, st.Status, st.SubmitVT)
	if st.Status.Terminal() {
		line += fmt.Sprintf(" end@%.1f", st.EndVT)
	}
	if st.Err != "" {
		line += "  " + st.Err
	}
	fmt.Println(line)
}

func cmdStatus(c *client, args []string) error {
	if len(args) == 0 {
		var states []jobserver.WireState
		if err := c.get("/v1/jobs", &states); err != nil {
			return err
		}
		for _, st := range states {
			printState(st)
		}
		return nil
	}
	var st jobserver.WireState
	if err := c.get("/v1/jobs/"+args[0], &st); err != nil {
		return err
	}
	printState(st)
	return nil
}

func printResult(res jobserver.WireResult) {
	fmt.Printf("%s: runtime %.2f s, energy %.2f Wh, %d/%d maps (%d dropped), %d waves\n",
		res.Job, res.Runtime, res.EnergyWh,
		res.Counters.MapsCompleted, res.Counters.MapsTotal,
		res.Counters.MapsDropped, res.Counters.Waves)
	outs := append([]jobserver.WireEstimate(nil), res.Outputs...)
	sort.Slice(outs, func(i, j int) bool { return outs[i].Value > outs[j].Value })
	if len(outs) > 15 {
		outs = outs[:15]
	}
	for _, o := range outs {
		switch {
		case o.Exact:
			fmt.Printf("  %-24s %14.1f (exact)\n", o.Key, o.Value)
		case o.Unbounded:
			fmt.Printf("  %-24s %14.1f (unbounded)\n", o.Key, o.Value)
		default:
			fmt.Printf("  %-24s %14.1f ± %-12.1f (%.0f%% conf)\n", o.Key, o.Value, o.Epsilon, o.Confidence*100)
		}
	}
}

func cmdResult(c *client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: approxctl result <id>")
	}
	var res jobserver.WireResult
	if err := c.get("/v1/jobs/"+args[0]+"/result", &res); err != nil {
		return err
	}
	printResult(res)
	return nil
}

// cmdAwait blocks until the job is terminal and fails unless it is
// done — the scriptable "wait for my result" primitive the CI chaos
// job leans on across a daemon restart (GET polls retry through the
// outage automatically).
func cmdAwait(c *client, args []string) error {
	fs := flag.NewFlagSet("await", flag.ExitOnError)
	timeout := fs.Duration("timeout", 2*time.Minute, "wall-clock budget")
	//lint:ignore errcheck ExitOnError flag sets never return an error
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: approxctl await [-timeout d] <id>")
	}
	st, err := c.waitTerminal(fs.Arg(0), time.Now().Add(*timeout))
	if err != nil {
		return err
	}
	printState(st)
	if st.Status != jobserver.StatusDone {
		return fmt.Errorf("job %s finished %s: %s", st.ID, st.Status, st.Err)
	}
	return nil
}

// directOutputs runs a spec to completion on a private in-process
// cluster and returns its wire-form outputs — the ground truth every
// served result is compared against.
func directOutputs(spec jobserver.JobSpec) ([]jobserver.WireEstimate, error) {
	job, err := spec.Build(1)
	if err != nil {
		return nil, err
	}
	res, err := mapreduce.Run(jobserver.New(jobserver.Config{SnapshotEvery: -1}).Engine(), job)
	if err != nil {
		return nil, fmt.Errorf("direct run of %s: %w", spec.Name, err)
	}
	return jobserver.WireEstimates(res.Outputs), nil
}

// cmdVerify re-executes each job's served spec locally and requires
// the served outputs to be byte-identical — (spec, seed) runs are
// bit-exact regardless of scheduling, so this holds even for results
// recovered from the journal after a kill -9. This is the client half
// of the chaos gate.
func cmdVerify(c *client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: approxctl verify <id>...")
	}
	for _, id := range args {
		var st jobserver.WireState
		if err := c.get("/v1/jobs/"+id, &st); err != nil {
			return err
		}
		if st.Status != jobserver.StatusDone || st.Result == nil {
			return fmt.Errorf("job %s is %s, nothing to verify: %s", id, st.Status, st.Err)
		}
		want, err := directOutputs(st.Spec)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(st.Result.Outputs, want) {
			return fmt.Errorf("job %s (%s): served outputs NOT byte-identical to a direct run of its spec", id, st.Spec.Name)
		}
		fmt.Printf("verified %s (%s): %d keys byte-identical to direct run\n", id, st.Spec.Name, len(st.Result.Outputs))
	}
	return nil
}

func cmdCancel(c *client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: approxctl cancel <id>")
	}
	if err := c.do(http.MethodDelete, "/v1/jobs/"+args[0], nil, nil); err != nil {
		return err
	}
	fmt.Println("canceled")
	return nil
}

// callerErr wraps an error returned by a stream callback, so the
// reconnect loop can tell "the caller aborted" from "the transport
// died" — only the latter is retried.
type callerErr struct{ err error }

func (e callerErr) Error() string { return e.err.Error() }

// streamFrames follows a job's JSONL stream, invoking fn per frame.
// A dropped connection — including a daemon crash-and-restart, where
// the recovered job re-emits the same deterministic snapshots —
// reconnects with ?from=<lastSeq+1> and resumes without duplicating
// frames. Any frame of progress refills the retry budget.
func (c *client) streamFrames(id string, fn func(jobserver.WireFrame) error) error {
	return c.streamLoop(id, false, fn)
}

// streamFramesBinary is streamFrames over the negotiated binary frame
// format — same resume contract, length-prefixed frames instead of
// JSON lines.
func (c *client) streamFramesBinary(id string, fn func(jobserver.WireFrame) error) error {
	return c.streamLoop(id, true, fn)
}

func (c *client) streamLoop(id string, binary bool, fn func(jobserver.WireFrame) error) error {
	last := -1 // highest Seq seen
	sawTerminal := false
	for attempt := 0; ; attempt++ {
		err := c.streamOnce(id, last+1, binary, func(f jobserver.WireFrame) error {
			if f.Seq > last {
				last = f.Seq
			}
			if f.Status.Terminal() {
				sawTerminal = true
			}
			attempt = 0
			if err := fn(f); err != nil {
				return callerErr{err}
			}
			return nil
		})
		var ce callerErr
		if errors.As(err, &ce) {
			return ce.err
		}
		if err == nil {
			if sawTerminal {
				return nil
			}
			// A clean EOF without a terminal frame is a truncated
			// stream (e.g. the server died between frames); resume.
			err = fmt.Errorf("stream for %s ended before a terminal frame", id)
		}
		if attempt >= c.retries || !retriable(err) {
			return err
		}
		time.Sleep(c.backoff(attempt, err))
	}
}

// streamOnce runs one connection's worth of frames through fn.
func (c *client) streamOnce(id string, from int, binary bool, fn func(jobserver.WireFrame) error) error {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/jobs/"+id+"/stream?from="+strconv.Itoa(from), nil)
	if err != nil {
		return err
	}
	if binary {
		req.Header.Set("Accept", wire.ContentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return apiErrorFrom(resp)
	}
	if binary {
		br := bufio.NewReader(resp.Body)
		for {
			payload, err := wire.ReadFrame(br)
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			wf, err := wire.DecodeJobFrame(payload)
			if err != nil {
				return err
			}
			if err := fn(jobserver.FrameFromWire(wf)); err != nil {
				return err
			}
		}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var f jobserver.WireFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return fmt.Errorf("bad stream frame %q: %w", sc.Text(), err)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return sc.Err()
}

func cmdWatch(c *client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	wireFmt := fs.Bool("wire", false, "negotiate the binary frame format instead of JSONL")
	//lint:ignore errcheck ExitOnError flag sets never return an error
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: approxctl watch [-wire] <id>")
	}
	follow := c.streamFrames
	if *wireFmt {
		follow = c.streamFramesBinary
	}
	return follow(fs.Arg(0), func(f jobserver.WireFrame) error {
		// One line per snapshot: worst relative CI across keys, so the
		// narrowing is visible at a glance.
		worst := 0.0
		unbounded := false
		for _, e := range f.Estimates {
			if e.Exact {
				continue
			}
			if e.Unbounded {
				unbounded = true
				continue
			}
			if e.Value > 0 || e.Value < 0 {
				rel := e.Epsilon / e.Value
				if rel < 0 {
					rel = -rel
				}
				if worst < rel {
					worst = rel
				}
			}
		}
		tag := ""
		if f.Final {
			tag = " final"
		}
		if unbounded {
			fmt.Printf("t=%8.1f  %-9s keys=%d  worst-CI=unbounded%s\n", f.T, f.Status, len(f.Estimates), tag)
		} else {
			fmt.Printf("t=%8.1f  %-9s keys=%d  worst-CI=%.3f%%%s\n", f.T, f.Status, len(f.Estimates), worst*100, tag)
		}
		return nil
	})
}

func cmdStats(c *client) error {
	var st jobserver.Stats
	if err := c.get("/v1/stats", &st); err != nil {
		return err
	}
	fmt.Printf("policy %s, virtual time %.1f s, energy %.1f Wh\n", st.Policy, st.VirtualNow, st.EnergyWh)
	fmt.Printf("active %d, queued %d / submitted %d: done %d, failed %d, canceled %d, rejected %d\n",
		st.Active, st.Queued, st.Submitted, st.Done, st.Failed, st.Canceled, st.Rejected)
	fmt.Printf("cluster: %d map slots, %d reduce slots\n", st.MapSlots, st.ReduceSlots)
	return nil
}

func summarize(states []jobserver.WireState) {
	byStatus := map[jobserver.JobStatus]int{}
	for _, st := range states {
		byStatus[st.Status]++
		printState(st)
	}
	fmt.Printf("%d jobs:", len(states))
	for _, s := range []jobserver.JobStatus{jobserver.StatusDone, jobserver.StatusFailed,
		jobserver.StatusCanceled, jobserver.StatusRejected} {
		if byStatus[s] > 0 {
			fmt.Printf(" %d %s", byStatus[s], s)
		}
	}
	fmt.Println()
}

func cmdReplay(c *client, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	n := fs.Int("n", 50, "jobs in the generated trace")
	seed := fs.Int64("seed", 42, "trace seed")
	//lint:ignore errcheck ExitOnError flag sets never return an error
	_ = fs.Parse(args)
	var states []jobserver.WireState
	if err := c.post("/v1/replay", jobserver.GenerateTrace(*n, *seed), &states); err != nil {
		return err
	}
	summarize(states)
	return nil
}

// cmdLoadgen drives the daemon with a closed-loop benchmark: -clients
// concurrent loops each run submit -> observe-terminal -> next until
// -n ops complete, and the report carries sustained QPS plus submit
// and completion latency percentiles. -watch follows each job's
// snapshot stream instead of polling (-wire negotiates the binary
// frame format); -max-p99 turns the run into a pass/fail gate for CI.
func cmdLoadgen(c *client, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	n := fs.Int("n", 20, "total jobs to pull through the closed loop")
	clients := fs.Int("clients", 4, "concurrent closed-loop clients")
	seed := fs.Int64("seed", 42, "spec sequence seed")
	tenants := fs.Int("tenants", 8, "distinct tenant identities (placement keys)")
	watch := fs.Bool("watch", false, "follow each job's snapshot stream to its terminal frame")
	wireFmt := fs.Bool("wire", false, "with -watch: negotiate the binary frame format")
	maxP99 := fs.Float64("max-p99", 0, "fail if completion p99 exceeds this many ms (0 = report only)")
	timeout := fs.Duration("timeout", time.Minute, "wall-clock budget per op")
	//lint:ignore errcheck ExitOnError flag sets never return an error
	_ = fs.Parse(args)

	rep := jobserver.RunClosedLoop(jobserver.LoadConfig{
		Base:    c.base,
		Clients: *clients,
		Ops:     *n,
		Seed:    *seed,
		Tenants: *tenants,
		Watch:   *watch,
		Binary:  *wireFmt,
		Timeout: *timeout,
	})
	fmt.Printf("loadgen: %d ops, %d clients, %.2f s wall, %.1f ops/s\n",
		rep.Ops, rep.Clients, rep.WallSecs, rep.QPS)
	fmt.Printf("  submit   p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  max %.1f ms\n",
		rep.SubmitP50, rep.SubmitP95, rep.SubmitP99, rep.SubmitMax)
	fmt.Printf("  complete p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  max %.1f ms\n",
		rep.CompleteP50, rep.CompleteP95, rep.CompleteP99, rep.CompleteMax)
	if rep.Frames > 0 {
		fmt.Printf("  streamed %d frames, %d bytes\n", rep.Frames, rep.StreamBytes)
	}
	if rep.Rejected > 0 {
		fmt.Printf("  %d submissions bounced (429/503) and were retried\n", rep.Rejected)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("loadgen: %d of %d ops failed", rep.Errors, rep.Errors+rep.Ops)
	}
	if rep.Ops == 0 {
		return errors.New("loadgen: no ops completed")
	}
	if *maxP99 > 0 && rep.CompleteP99 > *maxP99 {
		return fmt.Errorf("loadgen: completion p99 %.1f ms exceeds bound %.1f ms", rep.CompleteP99, *maxP99)
	}
	return nil
}

func (c *client) waitTerminal(id string, deadline time.Time) (jobserver.WireState, error) {
	for {
		var st jobserver.WireState
		if err := c.get("/v1/jobs/"+id, &st); err != nil {
			return st, err
		}
		if st.Status.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s at deadline", id, st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// cmdSmoke is the end-to-end service check CI runs against a live
// daemon: submit the trace concurrently, follow every job's stream,
// and require (a) the last streamed frame to be final and bitwise
// equal to the fetched result, and (b) the result's outputs to be
// bitwise equal to a direct in-process mapreduce.Run of the same spec.
// The second check is the service acceptance property end to end: the
// multi-tenant schedule may reorder waves, but per-job outputs depend
// only on (spec, seed).
func cmdSmoke(c *client, args []string) error {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	n := fs.Int("n", 6, "jobs to submit concurrently")
	seed := fs.Int64("seed", 3, "trace seed")
	timeout := fs.Duration("timeout", 2*time.Minute, "wall-clock budget")
	//lint:ignore errcheck ExitOnError flag sets never return an error
	_ = fs.Parse(args)

	trace := jobserver.GenerateTrace(*n, *seed)
	ids := make([]string, len(trace))
	var wg sync.WaitGroup
	var submitErr error
	var mu sync.Mutex
	for i, spec := range trace {
		i, spec := i, spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, _, err := c.submit(spec)
			if err != nil {
				mu.Lock()
				submitErr = fmt.Errorf("submit %s: %w", spec.Name, err)
				mu.Unlock()
				return
			}
			ids[i] = id
		}()
	}
	wg.Wait()
	if submitErr != nil {
		return submitErr
	}

	deadline := time.Now().Add(*timeout)
	for i, id := range ids {
		spec := trace[i]
		st, err := c.waitTerminal(id, deadline)
		if err != nil {
			return err
		}
		if st.Status != jobserver.StatusDone {
			return fmt.Errorf("job %s (%s): %s %s", id, spec.Name, st.Status, st.Err)
		}

		var res jobserver.WireResult
		if err := c.get("/v1/jobs/"+id+"/result", &res); err != nil {
			return err
		}

		// (a) The stream must converge to the final result: frames in
		// order, CI-bearing snapshots first, last frame final and equal.
		var frames []jobserver.WireFrame
		if err := c.streamFrames(id, func(f jobserver.WireFrame) error {
			frames = append(frames, f)
			return nil
		}); err != nil {
			return fmt.Errorf("job %s stream: %w", id, err)
		}
		if len(frames) == 0 {
			return fmt.Errorf("job %s: empty stream", id)
		}
		last := frames[len(frames)-1]
		if !last.Final {
			return fmt.Errorf("job %s: last stream frame not final", id)
		}
		if !reflect.DeepEqual(last.Estimates, res.Outputs) {
			return fmt.Errorf("job %s: final stream frame diverges from result", id)
		}
		for j := 1; j < len(frames); j++ {
			if frames[j].T < frames[j-1].T {
				return fmt.Errorf("job %s: stream time went backwards (%g after %g)", id, frames[j].T, frames[j-1].T)
			}
		}

		// (b) The served outputs must agree with a direct run of the same
		// spec on a private cluster. Live submissions land at arbitrary
		// virtual times, so slot contention can permute the order map
		// outputs reach the estimator's accumulators — that moves sums by
		// an ulp or two, no more. Anything beyond rounding is a real bug.
		job, err := spec.Build(1)
		if err != nil {
			return err
		}
		direct, err := mapreduce.Run(jobserver.New(jobserver.Config{SnapshotEvery: -1}).Engine(), job)
		if err != nil {
			return fmt.Errorf("direct run of %s: %w", spec.Name, err)
		}
		if err := outputsAgree(jobserver.WireEstimates(direct.Outputs), res.Outputs); err != nil {
			return fmt.Errorf("job %s (%s): served outputs diverge from direct run: %w", id, spec.Name, err)
		}
		fmt.Printf("ok %-28s %d snapshots, %d keys, runtime %.1f s\n",
			spec.Name, len(frames), len(res.Outputs), res.Runtime)
	}

	// (c) The deterministic path must be bit-exact: replaying the same
	// trace through /v1/replay equals a local in-process Replay under
	// the daemon's policy. JSON float64 encoding round-trips exactly,
	// so DeepEqual over the wire forms is a bitwise comparison.
	var st jobserver.Stats
	if err := c.get("/v1/stats", &st); err != nil {
		return err
	}
	pol, err := jobserver.ParsePolicy(st.Policy)
	if err != nil {
		return err
	}
	var served []jobserver.WireState
	if err := c.post("/v1/replay", trace, &served); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	cfg := jobserver.Config{Policy: pol, MaxQueue: len(trace) + 1, SnapshotEvery: -1}
	local := jobserver.New(cfg).Replay(trace)
	if len(served) != len(local) {
		return fmt.Errorf("replay served %d states, local %d", len(served), len(local))
	}
	for i := range local {
		want, got := local[i], served[i]
		if got.Status != want.Status {
			return fmt.Errorf("replay job %s: served %s, local %s", want.Spec.Name, got.Status, want.Status)
		}
		if want.Result == nil || got.Result == nil {
			continue
		}
		if !reflect.DeepEqual(got.Result.Outputs, jobserver.WireEstimates(want.Result.Outputs)) {
			return fmt.Errorf("replay job %s: served outputs not byte-identical to local replay", want.Spec.Name)
		}
	}

	fmt.Printf("smoke ok: %d jobs served live and verified against direct runs; %d-job replay byte-identical\n",
		len(ids), len(trace))
	return nil
}

// outputsAgree compares two output sets key by key within relative
// tolerance 1e-9 (live-mode accumulation-order rounding is ~1 ulp).
func outputsAgree(want, got []jobserver.WireEstimate) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d keys, want %d", len(got), len(want))
	}
	within := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		scale := 1.0
		if b > scale {
			scale = b
		} else if -b > scale {
			scale = -b
		}
		return d <= 1e-9*scale
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Key != w.Key || g.Exact != w.Exact || g.Unbounded != w.Unbounded {
			return fmt.Errorf("key %d: got %s/exact=%v/unbounded=%v, want %s/exact=%v/unbounded=%v",
				i, g.Key, g.Exact, g.Unbounded, w.Key, w.Exact, w.Unbounded)
		}
		if !within(g.Value, w.Value) || (!w.Unbounded && !within(g.Epsilon, w.Epsilon)) {
			return fmt.Errorf("key %s: got %v±%v, want %v±%v", w.Key, g.Value, g.Epsilon, w.Value, w.Epsilon)
		}
	}
	return nil
}
