// The "service" experiment: an end-to-end benchmark of approxd itself,
// run against in-process daemons booted on loopback HTTP — the exact
// serving path, minus process startup.
//
// It answers the two questions the sharded daemon exists for:
//
//  1. Throughput: closed-loop clients pull the same deterministic job
//     mix through a 1-shard/JSONL daemon and an N-shard/binary daemon;
//     the report carries QPS and submit/complete percentiles for both.
//  2. Fan-out cost: with the multicast frame cache, one encoded buffer
//     per sequence number is shared by every stream subscriber, so the
//     encode count must stay flat as subscribers grow. The experiment
//     replays one finished job's stream to 1 and then 64 concurrent
//     subscribers and records the wire-encode delta (expected: 0 — the
//     frames were encoded when the job ran, never per subscriber).
//
// This lives in cmd/approxbench (not internal/harness) because the
// harness is imported by the jobserver spec builder — routing the
// experiment through the harness would create an import cycle.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"approxhadoop/internal/jobserver"
	"approxhadoop/internal/wire"
)

// ServiceVariant is one daemon configuration's closed-loop measurement.
type ServiceVariant struct {
	Name   string               `json:"name"`
	Shards int                  `json:"shards"`
	Binary bool                 `json:"binary"`
	Load   jobserver.LoadReport `json:"load"`
}

// FanoutStat is one subscriber-count data point of the multicast test.
type FanoutStat struct {
	Subscribers int `json:"subscribers"`
	// Frames and Bytes are per subscriber (every subscriber sees the
	// same full replay of the terminal job's stream).
	FramesPerSub int   `json:"framesPerSub"`
	BytesPerSub  int64 `json:"bytesPerSub"`
	// Encodes is the wire-encode delta across the whole fan-out: with
	// the shared frame cache it stays 0 no matter how many subscribers
	// attach, because the buffers were encoded when the job ran.
	Encodes uint64 `json:"encodes"`
}

// ServiceReport is the "service" experiment's trajectory payload.
type ServiceReport struct {
	Variants []ServiceVariant `json:"variants"`
	Fanout   []FanoutStat     `json:"fanout"`
	// SpeedupQPS is sharded-binary QPS over single-shard-JSON QPS.
	SpeedupQPS float64 `json:"speedupQPS"`
}

// bootServiceDaemon starts an in-process daemon on a loopback listener
// and returns its base URL and a shutdown func. It deliberately reuses
// Daemon.Handler — the production route table — rather than Serve,
// which blocks on signals.
func bootServiceDaemon(cfg jobserver.Config, shards int) (string, func(), error) {
	d := jobserver.NewShardedDaemon(cfg, shards, false)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.Stop()
		return "", nil, err
	}
	srv := &http.Server{Handler: d.Handler()}
	go func() {
		//lint:ignore errcheck Serve returns ErrServerClosed on the Close below
		_ = srv.Serve(ln)
	}()
	stop := func() {
		//lint:ignore errcheck benchmark teardown; the measurements are already taken
		_ = srv.Close()
		d.Stop()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// serviceLoadVariant boots a daemon and pulls the standard closed-loop
// mix through it.
func serviceLoadVariant(name string, shards int, binary bool, seed int64, clients, ops int) (ServiceVariant, error) {
	base, stop, err := bootServiceDaemon(jobserver.Config{}, shards)
	if err != nil {
		return ServiceVariant{}, err
	}
	defer stop()
	rep := jobserver.RunClosedLoop(jobserver.LoadConfig{
		Base:    base,
		Clients: clients,
		Ops:     ops,
		Seed:    seed,
		Watch:   true,
		Binary:  binary,
	})
	if rep.Errors > 0 || rep.Ops != ops {
		return ServiceVariant{}, fmt.Errorf("service: %s completed %d/%d ops with %d errors", name, rep.Ops, ops, rep.Errors)
	}
	return ServiceVariant{Name: name, Shards: shards, Binary: binary, Load: rep}, nil
}

// drainStream subscribes to one job's binary stream and reads it to
// the end, returning frames seen and bytes received.
func drainStream(base, id string) (int, int64, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		//lint:ignore errcheck the body has been read to EOF already
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("service: stream %s: HTTP %d", id, resp.StatusCode)
	}
	var n int64
	frames := 0
	br := bufio.NewReader(resp.Body)
	for {
		payload, err := wire.ReadFrame(br)
		if err == io.EOF {
			return frames, n, nil
		}
		if err != nil {
			return frames, n, err
		}
		n += int64(len(payload)) + 4 // + length prefix
		frames++
	}
}

// measureFanout submits one snapshot-heavy job, waits for it to
// finish, then replays its stream to each subscriber count, recording
// the wire-encode delta per fan-out.
func measureFanout(seed int64, subCounts []int) ([]FanoutStat, error) {
	// A tight snapshot interval gives the probe job a real frame
	// series; the default (40 virtual seconds) would finish small jobs
	// in a single terminal frame and leave nothing to multicast.
	base, stop, err := bootServiceDaemon(jobserver.Config{SnapshotEvery: 0.25}, 1)
	if err != nil {
		return nil, err
	}
	defer stop()

	spec := jobserver.LoadSpec(seed, 0, 1)
	spec.Name = "fanout-probe"
	spec.Blocks = 64 // more waves -> more snapshot frames to multicast
	id, err := submitOnce(base, spec)
	if err != nil {
		return nil, err
	}
	// Run the job to terminal via one throwaway subscription; every
	// frame is encoded (exactly once) during this phase.
	if _, _, err := drainStream(base, id); err != nil {
		return nil, err
	}

	var out []FanoutStat
	for _, n := range subCounts {
		before := wire.Encodes()
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			frames   int
			subBytes int64
			firstErr error
		)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f, b, err := drainStream(base, id)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				frames, subBytes = f, b
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		out = append(out, FanoutStat{
			Subscribers:  n,
			FramesPerSub: frames,
			BytesPerSub:  subBytes,
			Encodes:      wire.Encodes() - before,
		})
	}
	return out, nil
}

// submitOnce POSTs one spec without retry (the fan-out daemon is idle).
func submitOnce(base string, spec jobserver.JobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer func() {
		//lint:ignore errcheck the response has been fully decoded
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("service: submit %s: HTTP %d", spec.Name, resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// runService executes the whole experiment and prints a summary table.
func runService(seed int64) (*ServiceReport, error) {
	const (
		clients = 8
		ops     = 32
		shards  = 4
	)
	rep := &ServiceReport{}
	fmt.Printf("service: closed-loop %d clients x %d ops, watch streams to terminal\n", clients, ops)
	for _, v := range []struct {
		name   string
		shards int
		binary bool
	}{
		{"1shard-json", 1, false},
		{fmt.Sprintf("%dshard-binary", shards), shards, true},
	} {
		variant, err := serviceLoadVariant(v.name, v.shards, v.binary, seed, clients, ops)
		if err != nil {
			return nil, err
		}
		rep.Variants = append(rep.Variants, variant)
		l := variant.Load
		fmt.Printf("  %-14s %6.1f ops/s   submit p50/p99 %.2f/%.2f ms   complete p50/p99 %.1f/%.1f ms   %d frames, %d stream bytes\n",
			v.name, l.QPS, l.SubmitP50, l.SubmitP99, l.CompleteP50, l.CompleteP99, l.Frames, l.StreamBytes)
	}
	if base := rep.Variants[0].Load.QPS; base > 0 {
		rep.SpeedupQPS = rep.Variants[len(rep.Variants)-1].Load.QPS / base
		fmt.Printf("  speedup: %.2fx QPS (%s vs %s)\n", rep.SpeedupQPS, rep.Variants[1].Name, rep.Variants[0].Name)
	}

	fanout, err := measureFanout(seed, []int{1, 16, 64})
	if err != nil {
		return nil, err
	}
	rep.Fanout = fanout
	for _, f := range fanout {
		fmt.Printf("  fanout %3d subs: %d frames/sub, %d bytes/sub, %d re-encodes\n",
			f.Subscribers, f.FramesPerSub, f.BytesPerSub, f.Encodes)
	}
	last := fanout[len(fanout)-1]
	if last.Encodes != 0 {
		return nil, fmt.Errorf("service: fan-out to %d subscribers re-encoded %d frames; the multicast cache is broken", last.Subscribers, last.Encodes)
	}
	return rep, nil
}
