// Command approxbench regenerates the paper's evaluation: every table
// and figure of Section 5 plus the ablation studies from DESIGN.md.
//
// Usage:
//
//	approxbench -experiment all            # everything (several minutes)
//	approxbench -experiment fig6           # one artifact
//	approxbench -experiment fig13 -scale 1 # the scaling series
//
// Performance work uses the trajectory flags:
//
//	approxbench -experiment fig6 -quick -json bench.json     # record
//	approxbench -experiment fig6 -quick -compare bench.json  # benchstat-style deltas
//	approxbench -experiment fig7 -cpuprofile cpu.out         # pprof
//	approxbench -experiment fig7 -allocprofile allocs.out    # allocation sites
//	approxbench -experiment all -parallel 1 -workers 1       # sequential baseline
//
// Experiments: table1 table2 fig5 fig6 fig7 fig8 fig9a fig9b fig9c
// fig10 fig11 fig12 fig13 userdef keyspace sketchpairs sketch stream
// service ablations all — or a comma-separated list, e.g.
//
//	approxbench -quick -experiment sketchpairs,sketch -json BENCH_pr8.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"approxhadoop/internal/harness"
	"approxhadoop/internal/mapreduce"
)

// ExpStat is one experiment's recorded cost in a -json trajectory
// file: wall-clock seconds plus Go heap traffic (alloc bytes and
// malloc count deltas around the run).
type ExpStat struct {
	Name       string  `json:"name"`
	WallSecs   float64 `json:"wall_secs"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Mallocs    uint64  `json:"mallocs"`
	// ShuffleBytes is the map-output shuffle volume the experiment's
	// jobs moved (delta of mapreduce.TotalShuffleBytes around the run):
	// the column the sketch-compressed representation is judged on.
	ShuffleBytes int64 `json:"shuffle_bytes"`
	// Stream carries the windowed-accuracy report of the "stream"
	// experiment: per-window realized error vs claimed CI, coverage,
	// and the SLO-violation count across the input-rate swing.
	Stream *harness.StreamReport `json:"stream,omitempty"`
	// Service carries the daemon benchmark of the "service" experiment:
	// closed-loop QPS/latency for 1-shard/JSON vs N-shard/binary, and
	// the stream fan-out encode counts (see cmd/approxbench/service.go).
	Service *ServiceReport `json:"service,omitempty"`
}

// Trajectory is the schema of -json output (e.g. BENCH_pr3.json).
type Trajectory struct {
	Scale       float64   `json:"scale"`
	Reps        int       `json:"reps"`
	Workers     int       `json:"workers"`
	Parallel    int       `json:"parallel"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Note        string    `json:"note,omitempty"`
	Experiments []ExpStat `json:"experiments"`
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "approxbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		experiment   = flag.String("experiment", "all", "experiment id or comma-separated list (table1,...,fig13,userdef,sketch,ablations,all)")
		scale        = flag.Float64("scale", 1, "dataset scale multiplier")
		reps         = flag.Int("reps", 3, "repetitions per data point")
		seed         = flag.Int64("seed", 42, "base random seed")
		quick        = flag.Bool("quick", false, "shortcut for -scale 0.1 -reps 1")
		parallel     = flag.Int("parallel", 0, "concurrently simulated jobs (0 = GOMAXPROCS, 1 = sequential)")
		workers      = flag.Int("workers", 0, "map-compute pool size per job (0 = GOMAXPROCS, 1 = inline)")
		jsonOut      = flag.String("json", "", "write per-experiment wall-clock/alloc stats to this file")
		compare      = flag.String("compare", "", "print benchstat-style deltas against a previous -json file")
		note         = flag.String("note", "", "free-form annotation stored in the -json file")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		allocprofile = flag.String("allocprofile", "", "write a pprof allocs profile (every allocation site, not just live heap) to this file on exit")
	)
	flag.Parse()

	cfg := harness.Default()
	cfg.Scale = *scale
	cfg.Reps = *reps
	cfg.Seed = *seed
	cfg.Out = os.Stdout
	cfg.Parallel = *parallel
	cfg.Workers = *workers
	if *quick {
		cfg.Scale = 0.1
		cfg.Reps = 1
	}
	r := harness.New(cfg)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	type exp struct {
		name string
		run  func() error
	}
	// streamReport / serviceReport are filled by their experiments and
	// attached to the matching ExpStat so the trajectory file records
	// the evidence, not just the cost.
	var streamReport *harness.StreamReport
	var serviceReport *ServiceReport
	all := []exp{
		{"table1", func() error { _, err := r.Table1(); return err }},
		{"table2", func() error { _, err := r.Table2(); return err }},
		{"fig5", func() error { _, err := r.Fig5(); return err }},
		{"fig6", func() error { _, err := r.Fig6(); return err }},
		{"fig7", func() error { _, err := r.Fig7(); return err }},
		{"fig8", func() error { _, err := r.Fig8(); return err }},
		{"fig9a", func() error { _, err := r.Fig9a(); return err }},
		{"fig9b", func() error { _, err := r.Fig9b(); return err }},
		{"fig9c", func() error { _, err := r.Fig9c(); return err }},
		{"fig10", func() error { _, err := r.Fig10(); return err }},
		{"fig11", func() error { _, err := r.Fig11(); return err }},
		{"fig12", func() error { _, err := r.Fig12(); return err }},
		{"fig13", func() error { _, err := r.Fig13(nil); return err }},
		{"userdef", func() error { _, err := r.UserDefined(); return err }},
		{"keyspace", func() error { _, err := r.KeySpace(); return err }},
		{"sketchpairs", func() error { _, err := r.SketchPairs(); return err }},
		{"sketch", func() error { _, err := r.Sketch(); return err }},
		{"sketchcmp", func() error { _, err := r.SketchCompare(); return err }},
		{"stream", func() error {
			rep, err := r.StreamAccuracy()
			streamReport = rep
			return err
		}},
		{"service", func() error {
			rep, err := runService(*seed)
			serviceReport = rep
			return err
		}},
		{"ablations", func() error {
			if _, err := r.AblationTaskOrder(); err != nil {
				return err
			}
			if _, err := r.AblationBarrier(); err != nil {
				return err
			}
			if _, err := r.AblationVarianceSplit(); err != nil {
				return err
			}
			_, err := r.AblationCostModel()
			return err
		}},
	}

	traj := Trajectory{
		Scale:      cfg.Scale,
		Reps:       cfg.Reps,
		Workers:    *workers,
		Parallel:   *parallel,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
	}

	// -experiment accepts a comma-separated list ("sketchpairs,sketch")
	// so representation comparisons land in one trajectory file.
	want := map[string]bool{}
	for _, name := range strings.Split(strings.ToLower(*experiment), ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	ran := false
	for _, e := range all {
		if !want["all"] && !want[e.name] {
			continue
		}
		ran = true
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		shuffleBefore := mapreduce.TotalShuffleBytes()
		start := time.Now()
		if err := e.run(); err != nil {
			fatalf("%s failed: %v", e.name, err)
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		traj.Experiments = append(traj.Experiments, ExpStat{
			Name:         e.name,
			WallSecs:     wall,
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
			Mallocs:      after.Mallocs - before.Mallocs,
			ShuffleBytes: mapreduce.TotalShuffleBytes() - shuffleBefore,
			Stream:       streamReport,
			Service:      serviceReport,
		})
		streamReport = nil
		serviceReport = nil
		fmt.Printf("\n[%s completed in %.1fs wall time]\n", e.name, wall)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "approxbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatalf("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traj); err != nil {
			fatalf("json: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("json: %v", err)
		}
	}
	if *compare != "" {
		if err := printCompare(*compare, traj); err != nil {
			fatalf("compare: %v", err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("memprofile: %v", err)
		}
	}
	if *allocprofile != "" {
		f, err := os.Create(*allocprofile)
		if err != nil {
			fatalf("%v", err)
		}
		// The allocs profile keeps freed objects, so it attributes the
		// full churn of the run to its call sites — the view that
		// matters for the zero-allocation data plane, where -memprofile
		// (live heap) would show almost nothing.
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatalf("allocprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("allocprofile: %v", err)
		}
	}
}

// printCompare renders benchstat-style old/new/delta rows for every
// experiment present in both the baseline file and this run.
func printCompare(path string, cur Trajectory) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Trajectory
	if err := json.Unmarshal(data, &base); err != nil {
		return err
	}
	old := map[string]ExpStat{}
	for _, e := range base.Experiments {
		old[e.Name] = e
	}
	fmt.Printf("\nvs %s (scale=%g reps=%d workers=%d parallel=%d)\n",
		path, base.Scale, base.Reps, base.Workers, base.Parallel)
	fmt.Printf("%-12s %9s %9s %8s   %10s %10s %8s   %12s %12s %8s   %12s %12s %8s\n",
		"experiment", "old s", "new s", "delta",
		"old MB", "new MB", "delta",
		"old mallocs", "new mallocs", "delta",
		"old shufKB", "new shufKB", "delta")
	for _, e := range cur.Experiments {
		o, ok := old[e.Name]
		if !ok {
			continue
		}
		const mb = 1 << 20
		fmt.Printf("%-12s %9.3f %9.3f %7.1f%%   %10.1f %10.1f %7.1f%%   %12d %12d %7.1f%%   %12.1f %12.1f %7.1f%%\n",
			e.Name, o.WallSecs, e.WallSecs, pctDelta(o.WallSecs, e.WallSecs),
			float64(o.AllocBytes)/mb, float64(e.AllocBytes)/mb,
			pctDelta(float64(o.AllocBytes), float64(e.AllocBytes)),
			o.Mallocs, e.Mallocs, pctDelta(float64(o.Mallocs), float64(e.Mallocs)),
			float64(o.ShuffleBytes)/1024, float64(e.ShuffleBytes)/1024,
			pctDelta(float64(o.ShuffleBytes), float64(e.ShuffleBytes)))
	}
	return nil
}

// pctDelta is the relative change vs a baseline, in percent.
func pctDelta(base, cur float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cur - base) / base * 100
}
