// Command approxbench regenerates the paper's evaluation: every table
// and figure of Section 5 plus the ablation studies from DESIGN.md.
//
// Usage:
//
//	approxbench -experiment all            # everything (several minutes)
//	approxbench -experiment fig6           # one artifact
//	approxbench -experiment fig13 -scale 1 # the scaling series
//
// Experiments: table1 table2 fig5 fig6 fig7 fig8 fig9a fig9b fig9c
// fig10 fig11 fig12 fig13 userdef keyspace ablations all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"approxhadoop/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (table1,...,fig13,userdef,ablations,all)")
		scale      = flag.Float64("scale", 1, "dataset scale multiplier")
		reps       = flag.Int("reps", 3, "repetitions per data point")
		seed       = flag.Int64("seed", 42, "base random seed")
		quick      = flag.Bool("quick", false, "shortcut for -scale 0.1 -reps 1")
	)
	flag.Parse()

	cfg := harness.Default()
	cfg.Scale = *scale
	cfg.Reps = *reps
	cfg.Seed = *seed
	cfg.Out = os.Stdout
	if *quick {
		cfg.Scale = 0.1
		cfg.Reps = 1
	}
	r := harness.New(cfg)

	type exp struct {
		name string
		run  func() error
	}
	all := []exp{
		{"table1", func() error { _, err := r.Table1(); return err }},
		{"table2", func() error { _, err := r.Table2(); return err }},
		{"fig5", func() error { _, err := r.Fig5(); return err }},
		{"fig6", func() error { _, err := r.Fig6(); return err }},
		{"fig7", func() error { _, err := r.Fig7(); return err }},
		{"fig8", func() error { _, err := r.Fig8(); return err }},
		{"fig9a", func() error { _, err := r.Fig9a(); return err }},
		{"fig9b", func() error { _, err := r.Fig9b(); return err }},
		{"fig9c", func() error { _, err := r.Fig9c(); return err }},
		{"fig10", func() error { _, err := r.Fig10(); return err }},
		{"fig11", func() error { _, err := r.Fig11(); return err }},
		{"fig12", func() error { _, err := r.Fig12(); return err }},
		{"fig13", func() error { _, err := r.Fig13(nil); return err }},
		{"userdef", func() error { _, err := r.UserDefined(); return err }},
		{"keyspace", func() error { _, err := r.KeySpace(); return err }},
		{"ablations", func() error {
			if _, err := r.AblationTaskOrder(); err != nil {
				return err
			}
			if _, err := r.AblationBarrier(); err != nil {
				return err
			}
			if _, err := r.AblationVarianceSplit(); err != nil {
				return err
			}
			_, err := r.AblationCostModel()
			return err
		}},
	}

	want := strings.ToLower(*experiment)
	ran := false
	for _, e := range all {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		start := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %.1fs wall time]\n", e.name, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "approxbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}
