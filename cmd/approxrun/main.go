// Command approxrun executes a single ApproxHadoop application with
// either user-specified dropping/sampling ratios or a target error
// bound, and prints the top output keys with their 95% confidence
// intervals alongside runtime/energy.
//
// Usage:
//
//	approxrun -app projectpop -sample 0.1 -drop 0.25
//	approxrun -app pagepop -target 0.01 -pilot
//	approxrun -app dcplacement -target 0.05
//	approxrun -app wikilength              # precise
//	approxrun -app projectpop -sample 0.1 -faults 8 -max-attempts 3 -degrade-to-drop
//	approxrun -app pagepop -sample 0.25 -trace events.jsonl
//	approxrun -app wikidistinct -sketch    # sketch-compressed shuffle
//	approxrun -app toppages -sketch
//	approxrun -stream -app web-bytes -window 10 -slo-err 0.05 -windows 20
//	approxrun -stream -app edit-rate -window 6 -slo-latency 0.05 -format tsv
//
// Apps: wikilength wikipagerank projectpop pagepop pagetraffic
// wikirate webrate attacks totalsize requestsize clients browsers
// dcplacement kmeans video wikidistinct toppages membership
//
// The last three are the sketch-plane scenarios: without -sketch they
// run the exact composite-pairs representation, with it the map output
// collapses to one sketch per (partition, group). The shuffle-bytes
// counter printed after the run shows the difference.
//
// -stream switches to the streaming plane: the app's workload file is
// replayed as a live, diurnally paced stream and the continuous query
// (edit-rate | web-bytes) emits one estimate per event-time window.
// The window series is deterministic for a fixed (-app, -seed, rate
// flags) regardless of -workers; -format tsv prints the canonical
// byte-stable series for CI diffs across runs and worker counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"approxhadoop/internal/approx"
	"approxhadoop/internal/apps"
	"approxhadoop/internal/cluster"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/harness"
	"approxhadoop/internal/mapreduce"
	"approxhadoop/internal/stream"
	"approxhadoop/internal/workload"
)

func main() {
	var (
		app    = flag.String("app", "projectpop", "application to run")
		sample = flag.Float64("sample", 1, "input data sampling ratio (0,1]")
		drop   = flag.Float64("drop", 0, "map task dropping ratio [0,1)")
		target = flag.Float64("target", 0, "target relative error bound (0 disables)")
		pilot  = flag.Bool("pilot", false, "bootstrap the target-error controller with a pilot wave")
		scale  = flag.Float64("scale", 1, "dataset scale multiplier")
		seed   = flag.Int64("seed", 42, "random seed")
		topN   = flag.Int("top", 15, "output keys to print")
		format = flag.String("format", "text", "output format: text | tsv | json")

		faults      = flag.Int("faults", 0, "inject N random faults (task faults, fail-stops, slowdowns, rack failures) seeded by -seed")
		maxAttempts = flag.Int("max-attempts", 0, "cap attempts per map task (0 = unlimited retries)")
		degrade     = flag.Bool("degrade-to-drop", false, "fold unrecoverable task failures into the estimator's dropped-cluster count instead of failing")

		sketch = flag.Bool("sketch", false, "use the sketch-compressed map-output representation (sketch-plane apps only)")

		streamMode = flag.Bool("stream", false, "run a streaming-plane continuous query (-app edit-rate | web-bytes)")
		window     = flag.Float64("window", 10, "stream: event-time window size in virtual seconds")
		slide      = flag.Float64("slide", 0, "stream: window slide in virtual seconds (0 = tumbling)")
		sloErr     = flag.Float64("slo-err", 0, "stream: target per-window relative error at 95% confidence (0 disables)")
		sloLatency = flag.Float64("slo-latency", 0, "stream: per-window modeled latency budget in seconds (0 disables)")
		windows    = flag.Int("windows", 12, "stream: stop after N windows (0 = drain the source)")
		rate       = flag.Float64("rate", 400, "stream: base arrival rate, records per virtual second")
		swing      = flag.Float64("swing", 0.5, "stream: diurnal rate swing in [0,1) (0.5 = 3x trough-to-peak)")
		period     = flag.Float64("period", 120, "stream: diurnal period in virtual seconds")

		trace      = flag.String("trace", "", "write the job's scheduling-event log as JSONL to this file (\"-\" for stdout)")
		workers    = flag.Int("workers", 0, "map-compute worker pool size (0 = GOMAXPROCS, 1 = inline); results are identical for any value")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	scaleN := func(n int) int {
		v := int(float64(n) * *scale)
		if v < 10 {
			v = 10
		}
		return v
	}

	if *streamMode {
		var rf workload.RateFunc
		if *swing > 0 {
			rf = workload.DiurnalRate(*rate, *swing, *period)
		} else {
			rf = workload.ConstantRate(*rate)
		}
		sOpts := apps.StreamOptions{
			Seed:       *seed,
			Rate:       rf,
			Window:     stream.Window{Size: *window, Slide: *slide},
			SLO:        stream.SLO{TargetRelErr: *sloErr, MaxLatency: *sloLatency},
			Workers:    *workers,
			MaxWindows: *windows,
		}
		var p *stream.Pipeline
		switch *app {
		case "edit-rate":
			e := workload.DefaultEditLog()
			e.LinesPerBlock = scaleN(e.LinesPerBlock)
			p = apps.EditRateStream(e, sOpts)
		case "web-bytes":
			w := workload.DefaultWebLog()
			w.LinesPerBlock = scaleN(w.LinesPerBlock)
			p = apps.WebBytesStream(w, sOpts)
		default:
			fmt.Fprintf(os.Stderr, "approxrun: unknown stream app %q (have: %v)\n", *app, apps.StreamApps())
			os.Exit(2)
		}
		series, err := p.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: %v\n", err)
			os.Exit(1)
		}
		if *format == "tsv" {
			if err := stream.WriteSeries(os.Stdout, series); err != nil {
				fmt.Fprintf(os.Stderr, "approxrun: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Printf("%s: %d windows of %gs (slide %gs)\n\n", *app, len(series), *window, p.Query.Window.Slide)
		for _, r := range series {
			tag := ""
			switch {
			case r.Exact:
				tag = " exact"
			case r.Degraded:
				tag = fmt.Sprintf(" keep=%.2f", r.Plan.KeepFrac)
			}
			if r.Partial {
				tag += " partial"
			}
			fmt.Printf("[%6.1f,%6.1f) %-8s %14.1f ± %-12.1f  n=%-6d f=%.3f lat=%.3fs%s\n",
				r.Start, r.End, p.Query.Op.String(), r.Est.Value, r.Est.Err,
				r.Records, r.Ratio(), r.Latency, tag)
		}
		return
	}

	var ctl mapreduce.Controller
	switch {
	case *target > 0 && *app == "dcplacement":
		ctl = &approx.TargetErrorGEV{Target: *target}
	case *target > 0 && *pilot:
		ctl = &approx.TargetError{Target: *target, Pilot: true, PilotRatio: 0.01}
	case *target > 0:
		ctl = &approx.TargetError{Target: *target}
	case *sample < 1 || *drop > 0:
		ctl = approx.NewStatic(*sample, *drop)
	}

	opts := apps.Options{Controller: ctl, Seed: *seed, Cost: harness.PaperCost()}
	wiki := func() *dfs.File {
		w := workload.DefaultWikiDump()
		w.ArticlesPerBlock = scaleN(w.ArticlesPerBlock)
		return w.File("wiki-dump")
	}
	wlog := func() *dfs.File {
		a := workload.DefaultAccessLog()
		a.LinesPerBlock = scaleN(a.LinesPerBlock)
		return a.File("wiki-access-log")
	}
	web := func() *dfs.File {
		w := workload.DefaultWebLog()
		w.LinesPerBlock = scaleN(w.LinesPerBlock)
		return w.File("webserver-log")
	}

	var job *mapreduce.Job
	switch *app {
	case "wikilength":
		job = apps.WikiLength(wiki(), opts)
	case "wikipagerank":
		job = apps.WikiPageRank(wiki(), opts)
	case "projectpop":
		job = apps.ProjectPopularity(wlog(), opts)
	case "pagepop":
		job = apps.PagePopularity(wlog(), opts)
	case "pagetraffic":
		job = apps.PageTraffic(wlog(), opts)
	case "wikirate":
		job = apps.WikiRequestRate(wlog(), opts)
	case "webrate":
		job = apps.WebRequestRate(web(), opts)
	case "attacks":
		job = apps.AttackFrequencies(web(), opts)
	case "totalsize":
		job = apps.TotalSize(web(), opts)
	case "requestsize":
		job = apps.RequestSize(web(), opts)
	case "clients":
		job = apps.Clients(web(), opts)
	case "browsers":
		job = apps.ClientBrowser(web(), opts)
	case "dcplacement":
		seeds := workload.SearchSeeds("dc-seeds", 80, *seed)
		job = apps.DCPlacement(seeds, apps.DCPlacementConfig{Iters: scaleN(1500)}, opts)
	case "kmeans":
		points := apps.KMeansData("points", 40, scaleN(1000), 4, *seed)
		job = apps.KMeansIteration(points, apps.KMeansConfig{ApproxRatio: *drop}, opts)
	case "video":
		frames := apps.VideoData("movie", 40, scaleN(200), *seed)
		job = apps.VideoEncoding(frames, apps.VideoEncodingConfig{ApproxRatio: *drop}, opts)
	case "wikidistinct", "toppages", "membership":
		skOpts := apps.SketchOptions{Options: opts, Sketch: *sketch}
		edits := func() *dfs.File {
			e := workload.DefaultEditLog()
			e.LinesPerBlock = scaleN(e.LinesPerBlock)
			return e.File("wiki-edit-log")
		}
		switch *app {
		case "wikidistinct":
			job = apps.WikiDistinctEditors(edits(), skOpts)
		case "toppages":
			job = apps.WikiTopPages(wlog(), skOpts)
		case "membership":
			job = apps.WikiEditorMembership(edits(), skOpts)
		}
	default:
		fmt.Fprintf(os.Stderr, "approxrun: unknown app %q\n", *app)
		os.Exit(2)
	}

	cfg := cluster.DefaultConfig()
	job.Workers = *workers
	job.Retry.MaxAttemptsPerTask = *maxAttempts
	job.DegradeToDrop = *degrade
	if *faults > 0 {
		// Reduce state is not replicated, so a fail-stop on a
		// reduce-hosting server aborts the job regardless of the retry
		// policy. Reduces are placed round-robin from server 0; protect
		// those hosts (their faults weaken to transient task faults).
		reduces := job.Reduces
		if reduces <= 0 || reduces > cfg.Servers {
			reduces = cfg.Servers
		}
		protect := make([]int, reduces)
		for i := range protect {
			protect[i] = i
		}
		plan := cluster.RandomFaultPlan(*seed, *faults, cfg.Servers, 20.0, protect...)
		job.Faults = &plan
	}

	job.RecordTrace = *trace != ""

	eng := cluster.New(cfg)
	res, err := mapreduce.Run(eng, job)
	if err != nil {
		fmt.Fprintf(os.Stderr, "approxrun: %v\n", err)
		os.Exit(1)
	}

	if *trace != "" {
		out := os.Stdout
		var f *os.File
		if *trace != "-" {
			f, err = os.Create(*trace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "approxrun: %v\n", err)
				os.Exit(1)
			}
			out = f
		}
		if err := mapreduce.WriteTraceJSONL(out, res.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: trace: %v\n", err)
			os.Exit(1)
		}
		if f != nil {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "approxrun: trace: %v\n", err)
				os.Exit(1)
			}
		}
		if *trace == "-" {
			return // the event log owns stdout
		}
		fmt.Fprintf(os.Stderr, "approxrun: wrote %d trace events to %s\n", len(res.Trace), *trace)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: memprofile: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	switch *format {
	case "tsv":
		if err := mapreduce.WriteTSV(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: %v\n", err)
			os.Exit(1)
		}
		return
	case "json":
		if err := mapreduce.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "approxrun: %v\n", err)
			os.Exit(1)
		}
		return
	}

	outs := append([]mapreduce.KeyEstimate(nil), res.Outputs...)
	sort.Slice(outs, func(i, j int) bool { return outs[i].Est.Value > outs[j].Est.Value })
	if len(outs) > *topN {
		outs = outs[:*topN]
	}
	fmt.Printf("%s: %d maps (%d completed, %d dropped, %d killed), %d waves\n",
		res.Job, res.Counters.MapsTotal, res.Counters.MapsCompleted,
		res.Counters.MapsDropped, res.Counters.MapsKilled, res.Counters.Waves)
	if c := res.Counters; c.MapsFailed > 0 || c.MapsDegraded > 0 {
		fmt.Printf("faults: %d attempts failed, %d retried, %d degraded to drops, %d servers blacklisted\n",
			c.MapsFailed, c.MapsRetried, c.MapsDegraded, c.ServersBlacklisted)
	}
	fmt.Printf("items processed: %d / %d; shuffle %d bytes; simulated runtime %.1f s; energy %.1f Wh\n\n",
		res.Counters.ItemsProcessed, res.Counters.ItemsTotal,
		res.Counters.ShuffleBytes, res.Runtime, res.EnergyWh)
	for _, o := range outs {
		if o.Exact {
			fmt.Printf("%-24s %14.1f (exact)\n", o.Key, o.Est.Value)
		} else {
			fmt.Printf("%-24s %14.1f ± %-12.1f (95%% conf)\n", o.Key, o.Est.Value, o.Est.Err)
		}
	}
}
