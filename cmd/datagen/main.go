// Command datagen materializes the synthetic datasets to disk for
// inspection (normally they stay virtual: generated blocks are
// re-created deterministically whenever a map task reads them).
//
// Usage:
//
//	datagen -dataset weblog -blocks 4 -out /tmp/weblog
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"approxhadoop/internal/apps"
	"approxhadoop/internal/dfs"
	"approxhadoop/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "accesslog", "wiki | accesslog | weblog | kmeans | video | seeds")
		blocks  = flag.Int("blocks", 4, "number of blocks to write")
		lines   = flag.Int("lines", 1000, "records per block")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var f *dfs.File
	switch *dataset {
	case "wiki":
		f = workload.WikiDump{Blocks: *blocks, ArticlesPerBlock: *lines,
			LinkUniverse: 20000, MeanLinks: 8, Seed: *seed}.File("wiki-dump")
	case "accesslog":
		f = workload.AccessLog{Blocks: *blocks, LinesPerBlock: *lines,
			Projects: 400, Pages: 20000, Seed: *seed}.File("access-log")
	case "weblog":
		f = workload.WebLog{Blocks: *blocks, LinesPerBlock: *lines,
			Clients: 3000, Attackers: 40, AttackRate: 0.02, Seed: *seed}.File("web-log")
	case "kmeans":
		f = apps.KMeansData("points", *blocks, *lines, 4, *seed)
	case "video":
		f = apps.VideoData("movie", *blocks, *lines, *seed)
	case "seeds":
		f = workload.SearchSeeds("seeds", *blocks, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	var total int64
	for _, b := range f.Blocks {
		path := filepath.Join(*out, fmt.Sprintf("%s.block%04d.txt", f.Name, b.Index))
		w, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		rc := b.Open()
		n, err := io.Copy(w, rc)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		total += n
	}
	fmt.Printf("datagen: wrote %d blocks (%.1f KB) of %s to %s\n",
		len(f.Blocks), float64(total)/1024, *dataset, *out)
}
