// Command approxd serves the multi-tenant ApproxHadoop job service
// over HTTP/JSON: many jobs share one simulated cluster, map slots are
// arbitrated FIFO or weighted fair-share, and running jobs stream
// early-result snapshots whose confidence intervals narrow wave by
// wave.
//
// With -journal the daemon is crash-safe: every accepted submission is
// fsynced to an append-only JSONL write-ahead log before it is
// acknowledged, and on startup the journal is replayed — completed
// jobs are restored verbatim, interrupted ones are re-admitted in
// their original order and re-executed bit-identically from their
// recorded spec + seed. SIGTERM drains gracefully: new submissions get
// 503 + Retry-After, running jobs finish, queued jobs stay journaled
// for the next boot.
//
// With -shards N the daemon hosts a fleet of N independent engine
// shards, each with its own virtual clock and journal segment; jobs
// are placed by consistent hashing on the spec's placement key
// (tenant, then idempotency key, then name), so a tenant's jobs land
// on one shard and the fleet scales submission throughput without
// perturbing any job's deterministic result. Restart a sharded
// daemon with the same -shards count — recovery refuses journal
// segments that would re-place recovered jobs.
//
// Usage:
//
//	approxd                                  # FIFO on 127.0.0.1:7070
//	approxd -policy fair -max-active 16
//	approxd -journal /var/lib/approxd/wal.jsonl
//	approxd -shards 4 -tenant-quota 4        # 4-engine fleet, <=4 in-flight
//	                                         # jobs per tenant
//	approxd -hold                            # park submissions; POST /v1/release replays
//	                                         # the batch deterministically
//
// API (see internal/jobserver):
//
//	POST   /v1/jobs               submit a JobSpec, returns {"id": ...}
//	GET    /v1/jobs               list all jobs
//	GET    /v1/jobs/{id}          one job's state
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/result   final result
//	GET    /v1/jobs/{id}/stream   early-result stream (?from=N resumes; JSONL,
//	                              or binary frames with
//	                              Accept: application/x-approx-frame)
//	POST   /v1/replay             run a whole []JobSpec trace
//	POST   /v1/release            release held submissions
//	GET    /v1/stats              service counters
//	GET    /healthz               liveness (503 after a journal failure)
//	GET    /readyz                readiness (503 while draining)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"approxhadoop/internal/jobserver"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		policy     = flag.String("policy", "fifo", "map-slot arbitration between jobs: fifo | fair")
		maxActive  = flag.Int("max-active", 8, "max concurrently running jobs")
		maxQueue   = flag.Int("max-queue", 64, "admission queue depth before 429s")
		snapshot   = flag.Float64("snapshot-every", 40, "virtual seconds between streamed snapshots (<0 disables)")
		workers    = flag.Int("workers", 0, "per-job map-compute pool size (0 = GOMAXPROCS); results are identical for any value")
		shards     = flag.Int("shards", 1, "engine-fleet size; jobs are placed by consistent hashing on tenant/key/name")
		quota      = flag.Int("tenant-quota", 0, "max in-flight jobs per tenant across the fleet (0 = unlimited)")
		maxLag     = flag.Int("max-lag", 0, "slow-subscriber drop threshold in frames (0 = default 256; negative disables dropping)")
		hold       = flag.Bool("hold", false, "park submissions until POST /v1/release, then replay the sorted batch deterministically")
		journal    = flag.String("journal", "", "write-ahead journal path; enables crash-safe recovery (empty = off; sharded daemons keep one segment per shard)")
		grace      = flag.Duration("grace", 10*time.Second, "SIGTERM drain grace for running jobs")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request timeout for quick endpoints (negative disables)")
		maxBody    = flag.Int64("max-body", 0, "max POST body bytes (0 = 4 MiB default)")
	)
	flag.Parse()

	pol, err := jobserver.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "approxd: %v\n", err)
		os.Exit(2)
	}
	mode := "live"
	if *hold {
		mode = "hold"
	}
	err = jobserver.Serve(jobserver.ServeConfig{
		Addr: *addr,
		Service: jobserver.Config{
			Policy:        pol,
			MaxActive:     *maxActive,
			MaxQueue:      *maxQueue,
			Workers:       *workers,
			SnapshotEvery: *snapshot,
			TenantQuota:   *quota,
		},
		Shards:         *shards,
		MaxLag:         *maxLag,
		Hold:           *hold,
		JournalPath:    *journal,
		Grace:          *grace,
		RequestTimeout: *reqTimeout,
		MaxBody:        *maxBody,
		OnReady: func(addr string, _ *jobserver.Daemon) {
			fmt.Fprintf(os.Stderr, "approxd: serving on %s (policy %s, %s mode, %d shard(s), %d active / %d queued max per shard)\n",
				addr, pol, mode, max(*shards, 1), *maxActive, *maxQueue)
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "approxd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "approxd: %v\n", err)
		os.Exit(1)
	}
}
