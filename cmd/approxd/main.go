// Command approxd serves the multi-tenant ApproxHadoop job service
// over HTTP/JSON: many jobs share one simulated cluster, map slots are
// arbitrated FIFO or weighted fair-share, and running jobs stream
// early-result snapshots whose confidence intervals narrow wave by
// wave.
//
// Usage:
//
//	approxd                                  # FIFO on 127.0.0.1:7070
//	approxd -policy fair -max-active 16
//	approxd -hold                            # park submissions; POST /v1/release replays
//	                                         # the batch deterministically
//
// API (see internal/jobserver):
//
//	POST   /v1/jobs               submit a JobSpec, returns {"id": ...}
//	GET    /v1/jobs               list all jobs
//	GET    /v1/jobs/{id}          one job's state
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/result   final result
//	GET    /v1/jobs/{id}/stream   JSONL early-result stream
//	POST   /v1/replay             run a whole []JobSpec trace
//	POST   /v1/release            release held submissions
//	GET    /v1/stats              service counters
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"approxhadoop/internal/jobserver"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		policy    = flag.String("policy", "fifo", "map-slot arbitration between jobs: fifo | fair")
		maxActive = flag.Int("max-active", 8, "max concurrently running jobs")
		maxQueue  = flag.Int("max-queue", 64, "admission queue depth before 429s")
		snapshot  = flag.Float64("snapshot-every", 40, "virtual seconds between streamed snapshots (<0 disables)")
		workers   = flag.Int("workers", 0, "per-job map-compute pool size (0 = GOMAXPROCS); results are identical for any value")
		hold      = flag.Bool("hold", false, "park submissions until POST /v1/release, then replay the sorted batch deterministically")
	)
	flag.Parse()

	pol, err := jobserver.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "approxd: %v\n", err)
		os.Exit(2)
	}
	svc := jobserver.New(jobserver.Config{
		Policy:        pol,
		MaxActive:     *maxActive,
		MaxQueue:      *maxQueue,
		Workers:       *workers,
		SnapshotEvery: *snapshot,
	})
	d := jobserver.NewDaemon(svc, *hold)
	defer d.Stop()

	mode := "live"
	if *hold {
		mode = "hold"
	}
	fmt.Fprintf(os.Stderr, "approxd: listening on %s (policy %s, %s mode, %d active / %d queued max)\n",
		*addr, pol, mode, *maxActive, *maxQueue)
	if err := http.ListenAndServe(*addr, d.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "approxd: %v\n", err)
		os.Exit(1)
	}
}
